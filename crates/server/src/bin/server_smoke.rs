//! Server smoke check, run by `ci.sh`: build a throwaway warehouse, start
//! the server, hammer it with 8 concurrent clients, shut down cleanly, and
//! prove no thread leaked. Exits non-zero on any violation.

use std::sync::Arc;

use maxson_engine::Session;
use maxson_server::{Client, Server, ServerConfig};
use maxson_storage::file::WriteOptions;
use maxson_storage::{Cell, ColumnType, Field, Schema};

fn temp_root() -> std::path::PathBuf {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .subsec_nanos();
    std::env::temp_dir().join(format!("maxson-smoke-{}-{nanos}", std::process::id()))
}

/// Threads in this process right now (Linux: /proc/self/task entries).
fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task")
        .map(|entries| entries.count())
        .unwrap_or(1)
}

fn build_warehouse(root: &std::path::Path) -> Session {
    let mut session = Session::open(root).expect("open warehouse");
    let schema = Schema::new(vec![
        Field::new("id", ColumnType::Int64),
        Field::new("payload", ColumnType::Utf8),
    ])
    .expect("schema");
    let mut catalog = session.catalog_mut();
    let table = catalog
        .create_table("db", "t", schema, 0)
        .expect("create table");
    for f in 0..4i64 {
        let rows: Vec<Vec<Cell>> = (0..32)
            .map(|i| {
                let n = f * 32 + i;
                vec![
                    Cell::Int(n),
                    Cell::from(format!(r#"{{"a": {n}, "b": {}}}"#, n % 7)),
                ]
            })
            .collect();
        table
            .append_file(&rows, WriteOptions::default(), 1)
            .expect("append");
    }
    drop(catalog);
    session
}

fn main() {
    let root = temp_root();
    std::fs::create_dir_all(&root).expect("mkdir");
    let session = build_warehouse(&root);

    let baseline_threads = thread_count();
    let mut server =
        Server::serve(session, "127.0.0.1:0", ServerConfig::default()).expect("start server");
    let addr = server.addr();
    println!("server_smoke: listening on {addr}");

    // Serial reference: one client, one session's worth of truth.
    let reference = {
        let mut c = Client::connect(addr).expect("connect reference");
        c.query("select id, get_json_object(payload, '$.a') as a from db.t where get_json_object(payload, '$.b') = 3")
            .expect("reference query")
            .to_display_string()
    };

    // 8 concurrent clients, each replaying the same query several times.
    let reference = Arc::new(reference);
    let clients: Vec<_> = (0..8)
        .map(|i| {
            let reference = reference.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                c.ping().expect("ping");
                for _ in 0..5 {
                    let got = c
                        .query("select id, get_json_object(payload, '$.a') as a from db.t where get_json_object(payload, '$.b') = 3")
                        .expect("query")
                        .to_display_string();
                    assert_eq!(got, *reference, "client {i} diverged from reference");
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }

    // Counters must reflect the load: 1 reference + 8 * 5 queries.
    let stats = {
        let mut c = Client::connect(addr).expect("connect stats");
        c.stats().expect("stats")
    };
    assert_eq!(stats.queries_ok, 41, "unexpected query count: {stats:?}");
    assert_eq!(stats.queries_err, 0, "unexpected errors: {stats:?}");
    println!(
        "server_smoke: {} queries ok, qps={:.0}, p99={}us, meta hits={} misses={}",
        stats.queries_ok,
        stats.qps(),
        stats.p99_us,
        stats.meta_cache_hits,
        stats.meta_cache_misses
    );

    // Clean shutdown joins every thread the server spawned.
    server.stop();
    // Give the OS a beat to reap joined threads before counting.
    for _ in 0..50 {
        if thread_count() <= baseline_threads {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let after = thread_count();
    assert!(
        after <= baseline_threads,
        "leaked threads: {baseline_threads} before, {after} after"
    );

    std::fs::remove_dir_all(&root).ok();
    println!("server_smoke: clean shutdown, zero leaked threads");
}
