//! The concurrent query server.
//!
//! Thread-per-connection over [`std::net::TcpListener`]; every connection
//! gets its own cheap [`Session`] clone sharing one warehouse (catalog,
//! rewriter, epoch, Norc metadata cache, trace buffer). Split execution is
//! time-sliced across in-flight queries by the [`FairScheduler`]: each
//! query registers a [`QueryLease`] for its duration and acquires one
//! permit per split task, so a 40-split scan cannot starve a 2-split
//! point query.
//!
//! Containment invariants, exercised by `tests/failure_injection.rs`:
//! * a client disconnecting mid-query only ends its own connection;
//! * malformed frames, bad magic, and oversized payloads get an error
//!   response (when the connection is still writable) and a close — the
//!   accept loop never sees them;
//! * a panic anywhere in query handling is caught at the connection
//!   boundary; shared warehouse state recovers poisoned locks, so other
//!   sessions keep answering.

use std::io::{ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use maxson_engine::Session;
use maxson_obs::LatencyHistogram;

use crate::sched::{FairScheduler, QueryLease};
use crate::wire::{self, OpCode, Writer, MAGIC, STATUS_ERR, STATUS_OK};
use crate::{Result, ServerError};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Worker threads per query (engine split parallelism). `None` defers
    /// to `MAXSON_THREADS` / available cores.
    pub threads: Option<usize>,
    /// Split permits in the fair scheduler. `None` = available cores.
    pub permits: Option<usize>,
    /// Enable the cross-query reuse cache with this byte budget (MiB) on
    /// the served warehouse; every connection shares one cache. `None`
    /// defers to the session's own setting (`MAXSON_RESULT_CACHE`).
    pub result_cache_mb: Option<u64>,
}

/// Point-in-time server counters, as returned by the STATS opcode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Successfully answered queries.
    pub queries_ok: u64,
    /// Queries answered with an error response.
    pub queries_err: u64,
    /// Microseconds since the server started.
    pub uptime_us: u64,
    /// Query latency p50 (µs, log-bucket upper bound).
    pub p50_us: u64,
    /// Query latency p99 (µs, log-bucket upper bound).
    pub p99_us: u64,
    /// Norc metadata cache hits across the warehouse.
    pub meta_cache_hits: u64,
    /// Norc metadata cache misses across the warehouse.
    pub meta_cache_misses: u64,
    /// Queries registered with the scheduler right now.
    pub active_queries: u64,
    /// Current warehouse epoch.
    pub epoch: u64,
    /// JSON tree nodes skipped by structural parsers, across all queries.
    pub nodes_skipped: u64,
    /// Structural bitmap builds across all queries.
    pub bitmap_builds: u64,
    /// Reuse-cache full-result hits (0 when the cache is off).
    pub reuse_hits: u64,
    /// Reuse-cache misses (0 when the cache is off).
    pub reuse_misses: u64,
    /// Reuse-cache fills admitted (0 when the cache is off).
    pub reuse_fills: u64,
    /// Bytes currently resident in the reuse cache (0 when off).
    pub reuse_bytes: u64,
    /// Active SIMD structural-kernel tier (`avx2`/`sse2`/`swar`/`scalar`).
    pub simd_kernel: String,
    /// Hottest `(table, path, estimated extracts)` from the workload
    /// sketch, heaviest first.
    pub hot_paths: Vec<(String, String, u64)>,
}

impl StatsSnapshot {
    /// Sustained queries per second over the server's uptime.
    pub fn qps(&self) -> f64 {
        let secs = self.uptime_us as f64 / 1e6;
        if secs > 0.0 {
            (self.queries_ok + self.queries_err) as f64 / secs
        } else {
            0.0
        }
    }
}

/// Shared mutable server counters.
#[derive(Debug)]
struct ServerState {
    started: Instant,
    queries_ok: AtomicU64,
    queries_err: AtomicU64,
    latency: Mutex<LatencyHistogram>,
    /// Sum of every answered query's `ExecMetrics` (work totals for STATS).
    exec_totals: Mutex<maxson_engine::ExecMetrics>,
    next_client_id: AtomicU64,
    shutdown: AtomicBool,
}

/// A running query server. Dropping (or calling [`Server::stop`]) shuts it
/// down and joins every thread it spawned — the process never leaks a
/// connection or acceptor thread past the handle's lifetime.
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept_handle: Option<JoinHandle<()>>,
}

impl Server {
    /// Open the warehouse at `root` and serve it on `addr` (use port 0 for
    /// an OS-assigned port; the bound address is [`Server::addr`]).
    pub fn start(root: impl AsRef<Path>, addr: &str, config: ServerConfig) -> Result<Server> {
        let template = Session::open(root.as_ref()).map_err(ServerError::Engine)?;
        Self::serve(template, addr, config)
    }

    /// Serve an existing session's warehouse: connections share its
    /// catalog, rewriter, epoch, metadata cache, and trace buffer. The
    /// caller keeps its handle — e.g. to run midnight cycles concurrently.
    pub fn serve(mut template: Session, addr: &str, config: ServerConfig) -> Result<Server> {
        if let Some(mb) = config.result_cache_mb {
            // Warehouse-shared: every connection cloned from the template
            // probes and fills this one cache.
            template.set_result_cache(Some(mb));
        }
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let permits = config
            .permits
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        let scheduler = Arc::new(FairScheduler::new(permits));
        let state = Arc::new(ServerState {
            started: Instant::now(),
            queries_ok: AtomicU64::new(0),
            queries_err: AtomicU64::new(0),
            latency: Mutex::new(LatencyHistogram::new()),
            exec_totals: Mutex::new(maxson_engine::ExecMetrics::default()),
            next_client_id: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });

        let accept_state = state.clone();
        let accept_handle = std::thread::Builder::new()
            .name("maxson-accept".into())
            .spawn(move || {
                accept_loop(listener, template, config, scheduler, accept_state);
            })
            .map_err(ServerError::Io)?;

        Ok(Server {
            addr: local,
            state,
            accept_handle: Some(accept_handle),
        })
    }

    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `true` once a shutdown has been requested (by [`Server::stop`] or a
    /// SHUTDOWN frame).
    pub fn is_shutdown(&self) -> bool {
        self.state.shutdown.load(Ordering::SeqCst)
    }

    /// Request shutdown and join every server thread. Idempotent.
    pub fn stop(&mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // Wake the acceptor: it blocks in `accept`, so poke it with a
        // throwaway connection (errors ignored — it may already be gone).
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: TcpListener,
    template: Session,
    config: ServerConfig,
    scheduler: Arc<FairScheduler>,
    state: Arc<ServerState>,
) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    loop {
        // Reap finished connection threads so a long-lived server does not
        // accumulate handles.
        connections.retain(|h| !h.is_finished());
        match listener.accept() {
            Ok((stream, _)) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let client_id = state.next_client_id.fetch_add(1, Ordering::Relaxed);
                let mut session = template.clone();
                if let Some(t) = config.threads {
                    session.set_threads(Some(t));
                }
                let scheduler = scheduler.clone();
                let state = state.clone();
                let spawned = std::thread::Builder::new()
                    .name(format!("maxson-conn-{client_id}"))
                    .spawn(move || {
                        serve_connection(stream, session, scheduler, state, client_id);
                    });
                match spawned {
                    Ok(handle) => connections.push(handle),
                    Err(_) => continue, // refused a thread; drop the conn
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
    }
    // Joining here (not in `stop`) keeps the guarantee one-sided: once the
    // acceptor thread is joined, every connection thread is joined too.
    for handle in connections {
        let _ = handle.join();
    }
}

/// Read exactly `buf.len()` bytes, tolerating read timeouts so the loop
/// can notice a server shutdown between (but not within) partial reads.
/// Returns `Ok(false)` on clean EOF at offset 0 (client hung up between
/// frames) and on shutdown before any byte arrived.
fn read_exact_interruptible(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "client closed mid-frame",
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if shutdown.load(Ordering::SeqCst) && filled == 0 {
                    return Ok(false);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

fn serve_connection(
    mut stream: TcpStream,
    mut session: Session,
    scheduler: Arc<FairScheduler>,
    state: Arc<ServerState>,
    client_id: u64,
) {
    // Short read timeout so an idle connection notices server shutdown.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = stream.set_nodelay(true);
    let mut request_id = 0u64;
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Frame header.
        let mut len_buf = [0u8; 4];
        match read_exact_interruptible(&mut stream, &mut len_buf, &state.shutdown) {
            Ok(true) => {}
            Ok(false) | Err(_) => return,
        }
        let len = u32::from_be_bytes(len_buf);
        if len > wire::MAX_FRAME_BYTES {
            // Framing is unrecoverable after a lying length prefix: answer
            // once, then close.
            let _ = send_err(
                &mut stream,
                &format!(
                    "frame of {len} bytes exceeds the {}-byte limit",
                    wire::MAX_FRAME_BYTES
                ),
            );
            return;
        }
        let mut payload = vec![0u8; len as usize];
        match read_exact_interruptible(&mut stream, &mut payload, &state.shutdown) {
            Ok(true) => {}
            Ok(false) | Err(_) => return,
        }
        request_id += 1;
        match handle_frame(
            &payload,
            &mut stream,
            &mut session,
            &scheduler,
            &state,
            client_id,
            request_id,
        ) {
            Ok(true) => {}
            Ok(false) | Err(_) => return,
        }
    }
}

/// Handle one request frame. `Ok(true)` keeps the connection open.
#[allow(clippy::too_many_arguments)]
fn handle_frame(
    payload: &[u8],
    stream: &mut TcpStream,
    session: &mut Session,
    scheduler: &Arc<FairScheduler>,
    state: &Arc<ServerState>,
    client_id: u64,
    request_id: u64,
) -> Result<bool> {
    let mut r = wire::Reader::new(payload);
    let Ok(magic) = r.u8() else {
        send_err(stream, "empty frame")?;
        return Ok(false);
    };
    if magic != MAGIC {
        send_err(stream, "bad magic byte: not a maxson client")?;
        return Ok(false);
    }
    let Ok(opcode) = r.u8() else {
        send_err(stream, "missing opcode")?;
        return Ok(false);
    };
    let Some(op) = OpCode::from_u8(opcode) else {
        send_err(stream, &format!("unknown opcode {opcode}"))?;
        return Ok(false);
    };
    match op {
        OpCode::Ping => {
            let mut w = Writer::new();
            w.u8(STATUS_OK);
            wire::write_frame(stream, &w.into_bytes())?;
            Ok(true)
        }
        OpCode::Stats => {
            let snapshot = snapshot_stats(session, scheduler, state);
            let mut w = Writer::new();
            w.u8(STATUS_OK)
                .u64(snapshot.queries_ok)
                .u64(snapshot.queries_err)
                .u64(snapshot.uptime_us)
                .u64(snapshot.p50_us)
                .u64(snapshot.p99_us)
                .u64(snapshot.meta_cache_hits)
                .u64(snapshot.meta_cache_misses)
                .u64(snapshot.active_queries)
                .u64(snapshot.epoch)
                .u64(snapshot.nodes_skipped)
                .u64(snapshot.bitmap_builds)
                .u64(snapshot.reuse_hits)
                .u64(snapshot.reuse_misses)
                .u64(snapshot.reuse_fills)
                .u64(snapshot.reuse_bytes);
            w.str(&snapshot.simd_kernel);
            w.u32(snapshot.hot_paths.len() as u32);
            for (table, path, count) in &snapshot.hot_paths {
                w.str(table).str(path).u64(*count);
            }
            wire::write_frame(stream, &w.into_bytes())?;
            Ok(true)
        }
        OpCode::Metrics => {
            let mut w = Writer::new();
            w.u8(STATUS_OK).str(&session.metrics_registry().expose());
            wire::write_frame(stream, &w.into_bytes())?;
            Ok(true)
        }
        OpCode::Shutdown => {
            state.shutdown.store(true, Ordering::SeqCst);
            let mut w = Writer::new();
            w.u8(STATUS_OK);
            wire::write_frame(stream, &w.into_bytes())?;
            Ok(false)
        }
        OpCode::Query => {
            let sql = match r.str() {
                Ok(s) => s,
                Err(e) => {
                    send_err(stream, &format!("malformed query frame: {e}"))?;
                    return Ok(false);
                }
            };
            let started = Instant::now();
            let outcome = run_query(session, scheduler, &sql, client_id, request_id);
            let took = started.elapsed();
            state
                .latency
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .record(took);
            let registry = std::sync::Arc::clone(session.metrics_registry());
            registry
                .histogram("maxson_server_query_wall_seconds", &[])
                .observe(took);
            match outcome {
                Ok(result) => {
                    state.queries_ok.fetch_add(1, Ordering::Relaxed);
                    registry
                        .counter("maxson_server_queries_total", &[("status", "ok")])
                        .inc();
                    state
                        .exec_totals
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .absorb(&result.metrics);
                    let mut w = Writer::new();
                    w.u8(STATUS_OK).u64(result.epoch);
                    w.u32(result.columns.len() as u32);
                    for c in &result.columns {
                        w.str(c);
                    }
                    w.u32(result.rows.len() as u32);
                    for row in &result.rows {
                        for cell in row {
                            w.cell(cell);
                        }
                    }
                    w.u64(result.metrics.parse_calls)
                        .u64(result.metrics.docs_parsed)
                        .u64(result.metrics.cache_hits)
                        .u64(result.metrics.meta_cache_hits)
                        .u64(result.metrics.meta_cache_misses);
                    wire::write_frame(stream, &w.into_bytes())?;
                    Ok(true)
                }
                Err(message) => {
                    state.queries_err.fetch_add(1, Ordering::Relaxed);
                    registry
                        .counter("maxson_server_queries_total", &[("status", "err")])
                        .inc();
                    send_err(stream, &message)?;
                    // Query errors are recoverable: the connection lives on.
                    Ok(true)
                }
            }
        }
    }
}

/// Execute one query under a scheduler lease, catching panics so a
/// poisoned rewriter or corrupt split takes down the request, not the
/// connection (let alone the server).
fn run_query(
    session: &mut Session,
    scheduler: &Arc<FairScheduler>,
    sql: &str,
    client_id: u64,
    request_id: u64,
) -> std::result::Result<maxson_engine::QueryResult, String> {
    let lease: Arc<QueryLease> = Arc::new(QueryLease::new(scheduler.clone()));
    session.set_split_scheduler(Some(lease.clone()));
    let outcome = {
        let span = session.tracer().span("server_query");
        span.attr("client", client_id);
        span.attr("request", request_id);
        let outcome = catch_unwind(AssertUnwindSafe(|| session.execute(sql)));
        if let Ok(Ok(result)) = &outcome {
            span.attr("rows", result.rows.len());
            span.attr("epoch", result.epoch);
        }
        outcome
    };
    session.set_split_scheduler(None);
    drop(lease); // deregister: everyone else's fair share grows back
    match outcome {
        Ok(Ok(result)) => Ok(result),
        Ok(Err(e)) => Err(e.to_string()),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            Err(format!("query panicked: {msg}"))
        }
    }
}

fn snapshot_stats(
    session: &Session,
    scheduler: &Arc<FairScheduler>,
    state: &Arc<ServerState>,
) -> StatsSnapshot {
    let (p50, p99) = {
        let hist = state
            .latency
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        (hist.quantile(0.5), hist.quantile(0.99))
    };
    let meta = session.catalog().meta_cache().stats();
    let (nodes_skipped, bitmap_builds) = {
        let totals = state
            .exec_totals
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        (totals.nodes_skipped, totals.bitmap_builds)
    };
    let reuse = session.reuse_stats();
    StatsSnapshot {
        queries_ok: state.queries_ok.load(Ordering::Relaxed),
        queries_err: state.queries_err.load(Ordering::Relaxed),
        uptime_us: state.started.elapsed().as_micros() as u64,
        p50_us: p50.as_micros() as u64,
        p99_us: p99.as_micros() as u64,
        meta_cache_hits: meta.hits,
        meta_cache_misses: meta.misses,
        active_queries: scheduler.active_queries() as u64,
        epoch: session.epoch(),
        nodes_skipped,
        bitmap_builds,
        reuse_hits: reuse.as_ref().map_or(0, |r| r.hits),
        reuse_misses: reuse.as_ref().map_or(0, |r| r.misses),
        reuse_fills: reuse.as_ref().map_or(0, |r| r.fills),
        reuse_bytes: reuse.as_ref().map_or(0, |r| r.bytes_resident),
        simd_kernel: session.simd_kernel().name().to_string(),
        hot_paths: session.metrics_registry().hot_paths(10),
    }
}

fn send_err(stream: &mut TcpStream, message: &str) -> Result<()> {
    let mut w = Writer::new();
    w.u8(STATUS_ERR).str(message);
    wire::write_frame(stream, &w.into_bytes())
}
