//! Length-prefixed binary wire protocol.
//!
//! Every message — request or response — is one *frame*:
//!
//! ```text
//! [u32 BE payload length][payload bytes]
//! ```
//!
//! The first payload byte is an opcode (requests) or a status (responses);
//! the rest is opcode-specific. Integers are big-endian, strings are
//! `u32`-length-prefixed UTF-8, cells are one type tag byte followed by the
//! value. The protocol is deliberately tiny — hermetic policy rules out
//! serde — and versioned by a magic byte so a stray HTTP client gets a
//! clean error instead of a hang.
//!
//! Frames larger than [`MAX_FRAME_BYTES`] are rejected before any
//! allocation, so a malicious length prefix cannot OOM the server.

use std::io::{Read, Write};

use maxson_storage::Cell;

use crate::{Result, ServerError};

/// Protocol magic: first byte of every request payload. Doubles as the
/// protocol version — it is bumped whenever any frame layout changes, so
/// a mismatched client/server pair fails with a clean "bad magic" error
/// instead of misparsing mid-frame. History: `0xA7` = initial protocol;
/// `0xA8` = STATS response gained the four reuse-cache fields.
pub const MAGIC: u8 = 0xA8;

/// Hard cap on one frame's payload (16 MiB). Query text going up and
/// result sets coming back both fit comfortably; anything bigger is a
/// protocol violation.
pub const MAX_FRAME_BYTES: u32 = 16 * 1024 * 1024;

/// Request opcodes (first payload byte after the magic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpCode {
    /// Execute the SQL string that follows.
    Query = 1,
    /// Liveness check; responds with an empty OK.
    Ping = 2,
    /// Server counters (QPS, latency quantiles, cache stats).
    Stats = 3,
    /// Orderly shutdown of the whole server.
    Shutdown = 4,
    /// Process-wide metric registry, Prometheus text exposition.
    Metrics = 5,
}

impl OpCode {
    pub fn from_u8(b: u8) -> Option<OpCode> {
        match b {
            1 => Some(OpCode::Query),
            2 => Some(OpCode::Ping),
            3 => Some(OpCode::Stats),
            4 => Some(OpCode::Shutdown),
            5 => Some(OpCode::Metrics),
            _ => None,
        }
    }
}

/// Response status byte.
pub const STATUS_OK: u8 = 0;
pub const STATUS_ERR: u8 = 1;

// Cell type tags.
const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_BOOL: u8 = 4;

/// Read one frame's payload from `r`.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME_BYTES {
        return Err(ServerError::Protocol(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Write one frame containing `payload` to `w`.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<()> {
    if payload.len() as u64 > u64::from(MAX_FRAME_BYTES) {
        return Err(ServerError::Protocol(format!(
            "response of {} bytes exceeds the {MAX_FRAME_BYTES}-byte limit",
            payload.len()
        )));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Cursor over a frame payload with checked reads.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(ServerError::Protocol(format!(
                "truncated frame: wanted {n} more bytes, have {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ServerError::Protocol("string field is not UTF-8".into()))
    }

    pub fn cell(&mut self) -> Result<Cell> {
        match self.u8()? {
            TAG_NULL => Ok(Cell::Null),
            TAG_INT => Ok(Cell::Int(self.i64()?)),
            TAG_FLOAT => Ok(Cell::Float(self.f64()?)),
            TAG_STR => Ok(Cell::from(self.str()?)),
            TAG_BOOL => Ok(Cell::Bool(self.u8()? != 0)),
            tag => Err(ServerError::Protocol(format!("unknown cell tag {tag}"))),
        }
    }
}

/// Growable frame payload builder.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Writer::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    pub fn str(&mut self, s: &str) -> &mut Self {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
        self
    }

    pub fn cell(&mut self, c: &Cell) -> &mut Self {
        match c {
            Cell::Null => self.u8(TAG_NULL),
            Cell::Int(i) => {
                self.u8(TAG_INT);
                self.i64(*i)
            }
            Cell::Float(f) => {
                self.u8(TAG_FLOAT);
                self.f64(*f)
            }
            Cell::Str(s) => {
                self.u8(TAG_STR);
                self.str(s)
            }
            Cell::Bool(b) => {
                self.u8(TAG_BOOL);
                self.u8(u8::from(*b))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let payload = read_frame(&mut &buf[..]).unwrap();
        assert_eq!(payload, b"hello");
    }

    #[test]
    fn oversized_frame_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_be_bytes());
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
    }

    #[test]
    fn truncated_frame_is_an_io_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&8u32.to_be_bytes());
        buf.extend_from_slice(b"abc"); // promised 8, delivered 3
        assert!(read_frame(&mut &buf[..]).is_err());
    }

    #[test]
    fn cell_roundtrip_all_tags() {
        let cells = [
            Cell::Null,
            Cell::Int(-42),
            Cell::Float(1.5),
            Cell::Float(f64::NAN),
            Cell::from("héllo"),
        ];
        let mut w = Writer::new();
        for c in &cells {
            w.cell(c);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.cell().unwrap(), Cell::Null);
        assert_eq!(r.cell().unwrap(), Cell::Int(-42));
        assert_eq!(r.cell().unwrap(), Cell::Float(1.5));
        // NaN: compare bit patterns, not values.
        match r.cell().unwrap() {
            Cell::Float(f) => assert_eq!(f.to_bits(), f64::NAN.to_bits()),
            other => panic!("expected float, got {other:?}"),
        }
        assert_eq!(r.cell().unwrap(), Cell::from("héllo"));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn reader_rejects_truncated_string() {
        let mut w = Writer::new();
        w.str("hello world");
        let mut bytes = w.into_bytes();
        bytes.truncate(bytes.len() - 3);
        let mut r = Reader::new(&bytes);
        assert!(r.str().is_err());
    }

    #[test]
    fn unknown_cell_tag_is_a_protocol_error() {
        let mut r = Reader::new(&[9u8]);
        let err = r.cell().unwrap_err();
        assert!(err.to_string().contains("unknown cell tag"), "{err}");
    }
}
