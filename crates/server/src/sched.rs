//! Fair split-level time-slicing across concurrent queries.
//!
//! [`FairScheduler`] owns a fixed pool of split permits (normally the
//! machine's core count). Each in-flight query registers on entry and
//! acquires one permit per split task through the engine's
//! [`SplitScheduler`] hook. Admission is *fair-share*: a query may take a
//! permit only while it holds fewer than `max(1, permits / active)` — its
//! floor share — or when permits would otherwise sit idle (work-conserving:
//! a lone query still gets the whole pool).
//!
//! Deadlock-freedom: suppose permits are available but nobody may take one.
//! Then every active query holds at least its share, so the sum held is at
//! least `active * max(1, permits/active) >= permits` — contradicting
//! availability. Hence whenever a permit is free, some query is eligible,
//! and release wakes all waiters.

use std::collections::HashMap;
use std::sync::{Condvar, Mutex};

use maxson_engine::SplitScheduler;
use maxson_obs::{Counter, Registry};

/// Shared fair-share permit pool. One instance per server; every session
/// clone installs a [`QueryLease`]-scoped handle around each query.
#[derive(Debug)]
pub struct FairScheduler {
    inner: Mutex<Inner>,
    cv: Condvar,
    permits: usize,
    /// Split permits handed out over the scheduler's lifetime.
    acquires: Counter,
    /// Acquires that had to wait at least once before a permit freed up —
    /// the saturation signal behind the `maxson_sched_waits_total` series.
    waits: Counter,
}

#[derive(Debug)]
struct Inner {
    /// Permits currently handed out.
    in_use: usize,
    /// Permits held per registered (active) query.
    held: HashMap<u64, usize>,
    /// Next query registration id.
    next_id: u64,
}

impl FairScheduler {
    /// A scheduler with `permits` split slots (clamped to at least 1).
    pub fn new(permits: usize) -> Self {
        FairScheduler {
            inner: Mutex::new(Inner {
                in_use: 0,
                held: HashMap::new(),
                next_id: 0,
            }),
            cv: Condvar::new(),
            permits: permits.max(1),
            acquires: Registry::global().counter("maxson_sched_acquires_total", &[]),
            waits: Registry::global().counter("maxson_sched_waits_total", &[]),
        }
    }

    /// Total permits in the pool.
    pub fn permits(&self) -> usize {
        self.permits
    }

    /// Queries currently registered (admitted and not yet finished).
    pub fn active_queries(&self) -> usize {
        self.lock().held.len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panic inside a split task never happens while this lock is
        // held (acquire/release only touch counters), but recover anyway
        // so one poisoned scheduler cannot wedge the whole server.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Register a query; the returned id keys its held-permit count.
    fn register(&self) -> u64 {
        let mut inner = self.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.held.insert(id, 0);
        id
    }

    /// Deregister a query, releasing any permits it still holds (a panicked
    /// pool task has already released via its RAII permit; this is the
    /// belt-and-suspenders path for leases dropped mid-acquire).
    fn deregister(&self, id: u64) {
        let mut inner = self.lock();
        if let Some(held) = inner.held.remove(&id) {
            inner.in_use -= held;
        }
        // Shares grew for everyone else; wake all waiters to re-evaluate.
        self.cv.notify_all();
    }

    /// Per-query floor share under the current active count.
    fn share(&self, active: usize) -> usize {
        (self.permits / active.max(1)).max(1)
    }

    fn acquire_for(&self, id: u64) {
        let mut inner = self.lock();
        let mut waited = false;
        loop {
            let active = inner.held.len().max(1);
            let share = self.share(active);
            let held = inner.held.get(&id).copied().unwrap_or(0);
            let available = self.permits.saturating_sub(inner.in_use);
            // Eligible below the floor share, or work-conserving when the
            // pool would otherwise idle (more free permits than queries
            // still below their share could claim).
            if available > 0 && (held < share || available > active.saturating_mul(share)) {
                inner.in_use += 1;
                *inner.held.entry(id).or_insert(0) += 1;
                drop(inner);
                self.acquires.inc();
                if waited {
                    self.waits.inc();
                }
                return;
            }
            waited = true;
            inner = self
                .cv
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn release_for(&self, id: u64) {
        let mut inner = self.lock();
        inner.in_use = inner.in_use.saturating_sub(1);
        if let Some(held) = inner.held.get_mut(&id) {
            *held = held.saturating_sub(1);
        }
        drop(inner);
        self.cv.notify_all();
    }
}

/// One query's scoped registration with the scheduler. Install it on the
/// connection's session for the duration of one query; dropping it (even
/// during unwind) deregisters and releases any leaked permits.
///
/// Registration is **lazy**: the query joins the active set on its first
/// permit acquire, not at lease construction. A query that never runs a
/// split task — a reuse-cache full-result hit is served without touching
/// the executor — therefore never registers, never shrinks the other
/// queries' fair shares, and costs the scheduler nothing.
#[derive(Debug)]
pub struct QueryLease {
    scheduler: std::sync::Arc<FairScheduler>,
    id: std::sync::OnceLock<u64>,
}

impl QueryLease {
    pub fn new(scheduler: std::sync::Arc<FairScheduler>) -> Self {
        QueryLease {
            scheduler,
            id: std::sync::OnceLock::new(),
        }
    }
}

impl Drop for QueryLease {
    fn drop(&mut self) {
        // Only ever registered if a split task actually ran.
        if let Some(id) = self.id.get() {
            self.scheduler.deregister(*id);
        }
    }
}

impl SplitScheduler for QueryLease {
    fn acquire(&self) {
        let id = *self.id.get_or_init(|| self.scheduler.register());
        self.scheduler.acquire_for(id);
    }
    fn release(&self) {
        if let Some(id) = self.id.get() {
            self.scheduler.release_for(*id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lone_query_gets_the_whole_pool() {
        let sched = Arc::new(FairScheduler::new(4));
        let lease = QueryLease::new(sched.clone());
        for _ in 0..4 {
            lease.acquire();
        }
        assert_eq!(sched.lock().in_use, 4);
        for _ in 0..4 {
            lease.release();
        }
        assert_eq!(sched.lock().in_use, 0);
    }

    #[test]
    fn dropping_a_lease_frees_its_permits() {
        let sched = Arc::new(FairScheduler::new(2));
        let a = QueryLease::new(sched.clone());
        a.acquire();
        a.acquire();
        drop(a); // released implicitly by deregistration
        assert_eq!(sched.lock().in_use, 0);
        assert_eq!(sched.active_queries(), 0);
    }

    #[test]
    fn two_queries_split_the_pool_fairly() {
        // 2 permits, 2 queries: each query's floor share is 1, so neither
        // can starve the other even if one is split-hungry.
        let sched = Arc::new(FairScheduler::new(2));
        let greedy = QueryLease::new(sched.clone());
        let meek = QueryLease::new(sched.clone());
        greedy.acquire(); // holds 1 of share 1
        meek.acquire(); // must still get its share immediately
        assert_eq!(sched.lock().in_use, 2);
        greedy.release();
        meek.release();
    }

    #[test]
    fn blocked_acquire_wakes_on_release() {
        let sched = Arc::new(FairScheduler::new(1));
        let a = QueryLease::new(sched.clone());
        a.acquire();
        let sched2 = sched.clone();
        let progressed = Arc::new(AtomicUsize::new(0));
        let progressed2 = progressed.clone();
        let t = std::thread::spawn(move || {
            let b = QueryLease::new(sched2);
            b.acquire(); // blocks until `a` releases
            progressed2.store(1, Ordering::SeqCst);
            b.release();
        });
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(progressed.load(Ordering::SeqCst), 0, "must block");
        a.release();
        t.join().unwrap();
        assert_eq!(progressed.load(Ordering::SeqCst), 1);
        drop(a);
        assert_eq!(sched.lock().in_use, 0);
    }

    #[test]
    fn an_unacquired_lease_never_registers() {
        // Reuse-hit-served queries drop their lease without acquiring; they
        // must not have counted against anyone's fair share.
        let sched = Arc::new(FairScheduler::new(2));
        let idle = QueryLease::new(sched.clone());
        assert_eq!(
            sched.active_queries(),
            0,
            "no registration before first acquire"
        );
        let busy = QueryLease::new(sched.clone());
        busy.acquire();
        assert_eq!(
            sched.active_queries(),
            1,
            "only the acquiring query is active"
        );
        busy.release();
        drop(idle);
        drop(busy);
        assert_eq!(sched.active_queries(), 0);
        assert_eq!(sched.lock().in_use, 0);
    }

    /// Stochastic fairness check: many queries hammering a small pool all
    /// finish, and the pool never over-commits.
    #[test]
    fn pool_never_overcommits_under_contention() {
        let sched = Arc::new(FairScheduler::new(3));
        let peak = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let sched = sched.clone();
                let peak = peak.clone();
                std::thread::spawn(move || {
                    let lease = QueryLease::new(sched.clone());
                    for _ in 0..50 {
                        lease.acquire();
                        let now = sched.lock().in_use;
                        peak.fetch_max(now, Ordering::SeqCst);
                        lease.release();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 3, "pool overcommitted");
        assert_eq!(sched.lock().in_use, 0);
        assert_eq!(sched.active_queries(), 0);
    }
}
