//! `maxson-server`: a hermetic concurrent query server over one shared
//! warehouse.
//!
//! Many TCP clients execute SQL against a single [`maxson_engine::Session`]
//! warehouse: the catalog, installed Maxson rewriter, warehouse epoch, and
//! Norc metadata cache are process-wide shared state; per-connection
//! session clones keep their own parser/thread knobs. A fair-share split
//! scheduler time-slices the engine's split-level parallelism across
//! in-flight queries, and the midnight cycle's epoch swap stays atomic
//! under concurrent load — every query sees exactly one epoch.
//!
//! Built entirely on `std::net` + `std::thread` (hermetic policy: no
//! crates-io dependencies). See `DESIGN.md` §11 for the wire protocol and
//! scheduling model, and `tests/server_differential.rs` for the proof that
//! served results are byte-identical to serial in-process execution.

pub mod client;
pub mod sched;
pub mod server;
pub mod wire;

pub use client::Client;
pub use sched::{FairScheduler, QueryLease};
pub use server::{Server, ServerConfig, StatsSnapshot};

/// Server-side error type.
#[derive(Debug)]
pub enum ServerError {
    /// Socket / filesystem failure.
    Io(std::io::Error),
    /// Malformed frame or protocol violation.
    Protocol(String),
    /// Engine failure while opening or querying the warehouse.
    Engine(maxson_engine::EngineError),
    /// The server answered with an error response.
    Remote(String),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "io error: {e}"),
            ServerError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServerError::Engine(e) => write!(f, "engine error: {e}"),
            ServerError::Remote(msg) => write!(f, "server error: {msg}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<maxson_engine::EngineError> for ServerError {
    fn from(e: maxson_engine::EngineError) -> Self {
        ServerError::Engine(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ServerError>;
