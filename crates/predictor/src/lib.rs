//! From-scratch ML substrate: the MPJP predictor and its baselines.
//!
//! The paper predicts, per JSONPath per day, whether the path will be
//! parsed at least twice tomorrow (**MPJP**). It compares four baseline
//! classifiers (LR, SVM, MLPClassifier, Uni-LSTM) against the proposed
//! hybrid **LSTM+CRF** (Tables III & IV). We implement all of them from
//! scratch on plain `Vec<f64>` math:
//!
//! * [`linear`] — logistic regression (log loss) and linear SVM (hinge
//!   loss), both via mini-batch SGD,
//! * [`mlp`] — a small feed-forward network with backprop,
//! * [`lstm`] — a single-layer LSTM sequence labeler trained with BPTT and
//!   per-step cross-entropy,
//! * [`crf`] — a binary linear-chain CRF layer: transition potentials
//!   estimated from training label sequences, Viterbi decoding over the
//!   LSTM's emission scores,
//! * [`features`] — the feature pipeline of §IV-A: location (database,
//!   table, column) hash features, *Count sequence*, and *Datediff
//!   sequence*, with 70/20/10 train/validation/test splits,
//! * [`eval`] — precision / recall / F1.

pub mod crf;
pub mod eval;
pub mod features;
pub mod linalg;
pub mod linear;
pub mod lstm;
pub mod mlp;

pub use crf::{CrfLayer, LstmCrf};
pub use eval::{evaluate, Metrics};
pub use features::{build_dataset, DataSplit, Dataset, FeatureConfig, SequenceExample};
pub use linear::{LinearModel, Loss};
pub use lstm::LstmLabeler;
pub use mlp::MlpClassifier;

/// A trained model that labels the final day of a feature sequence.
pub trait MpjpModel {
    /// Predict the label for the final step of each example.
    fn predict(&self, example: &SequenceExample) -> bool;
    /// Model display name (Table III's first column).
    fn name(&self) -> &'static str;
}
