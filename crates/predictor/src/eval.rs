//! Precision / recall / F1 evaluation (the columns of Tables III & IV).

use crate::features::SequenceExample;
use crate::MpjpModel;

/// Binary classification metrics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Metrics {
    /// True positives.
    pub tp: u64,
    /// False positives.
    pub fp: u64,
    /// False negatives.
    pub fn_: u64,
    /// True negatives.
    pub tn: u64,
}

impl Metrics {
    /// Accumulate one prediction.
    pub fn record(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, true) => self.fn_ += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Precision = tp / (tp + fp); 1.0 when nothing was predicted positive
    /// (matching the paper's reporting of precision 1.0 for conservative
    /// models).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall = tp / (tp + fn); 0.0 when there are no positives.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Accuracy over all predictions.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.fn_ + self.tn;
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }
}

/// Evaluate a model over the final-step labels of `examples`.
pub fn evaluate<M: MpjpModel + ?Sized>(model: &M, examples: &[&SequenceExample]) -> Metrics {
    let mut m = Metrics::default();
    for ex in examples {
        m.record(model.predict(ex), ex.final_label());
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_formulas() {
        let m = Metrics {
            tp: 8,
            fp: 2,
            fn_: 4,
            tn: 86,
        };
        assert!((m.precision() - 0.8).abs() < 1e-12);
        assert!((m.recall() - 8.0 / 12.0).abs() < 1e-12);
        let expected_f1 = 2.0 * 0.8 * (8.0 / 12.0) / (0.8 + 8.0 / 12.0);
        assert!((m.f1() - expected_f1).abs() < 1e-12);
        assert!((m.accuracy() - 0.94).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        let empty = Metrics::default();
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 0.0);
        assert_eq!(empty.f1(), 0.0);
        assert_eq!(empty.accuracy(), 0.0);
    }

    #[test]
    fn record_buckets() {
        let mut m = Metrics::default();
        m.record(true, true);
        m.record(true, false);
        m.record(false, true);
        m.record(false, false);
        assert_eq!((m.tp, m.fp, m.fn_, m.tn), (1, 1, 1, 1));
    }
}
