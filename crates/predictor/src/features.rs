//! Feature pipeline (§IV-A).
//!
//! For each JSONPath and each prediction day we build a *sequence example*:
//! one feature vector per day in the history window, plus the per-day
//! labels "was this path an MPJP the following day". Features per step:
//!
//! * hashed one-hot-ish location features for database / table / column
//!   (paths in the same data source appear together in queries — the
//!   spatial signal),
//! * the *Count sequence* entry for that day (raw and log-scaled, plus the
//!   `count >= 2` indicator),
//! * the *Datediff sequence* entry: how old the observation is.

use maxson_trace::{JsonPathCollector, JsonPathLocation};

/// Feature configuration.
#[derive(Debug, Clone)]
pub struct FeatureConfig {
    /// History window length in days (1 week / 2 weeks / 1 month in
    /// Table IV).
    pub window: usize,
    /// Number of hash buckets per location component.
    pub location_buckets: usize,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig {
            window: 7,
            location_buckets: 4,
        }
    }
}

impl FeatureConfig {
    /// Dimensionality of one per-day feature vector.
    pub fn feature_dim(&self) -> usize {
        3 * self.location_buckets + 4
    }
}

/// One example: a window of per-day feature vectors with per-day labels.
#[derive(Debug, Clone)]
pub struct SequenceExample {
    /// The path this example describes.
    pub location: JsonPathLocation,
    /// The prediction day (labels refer to `day - window + 1 + t + 1`).
    pub day: u32,
    /// Per-step features, `window` long.
    pub steps: Vec<Vec<f64>>,
    /// Per-step labels: `labels[t]` = was the path an MPJP on the day after
    /// step `t`.
    pub labels: Vec<bool>,
}

impl SequenceExample {
    /// The label the evaluation cares about: the final step's.
    pub fn final_label(&self) -> bool {
        *self.labels.last().expect("non-empty window")
    }

    /// Flatten steps into one vector (gives a model the full day-by-day
    /// sequence laid out positionally).
    pub fn flattened(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.steps.len() * self.steps[0].len());
        for s in &self.steps {
            v.extend_from_slice(s);
        }
        v
    }

    /// Non-sequential features for the static baselines (LR, SVM, MLP).
    ///
    /// Table III of the paper measures "sequential features' importance":
    /// the baselines are classifiers that *cannot take into account date
    /// sequences*, so they see the location features plus order-free
    /// aggregates of the count history (latest count, mean, max, active-day
    /// fraction, MPJP-day fraction) — everything except *when* each count
    /// happened.
    pub fn static_features(&self) -> Vec<f64> {
        let last = self.steps.last().expect("non-empty window");
        if last.len() < 5 {
            // Degenerate feature layout (hand-built test fixtures): fall
            // back to the flattened sequence.
            return self.flattened();
        }
        // Location block: everything before the 4 per-day count features.
        let loc_dim = last.len() - 4;
        let mut v: Vec<f64> = last[..loc_dim].to_vec();
        // Latest day's count features.
        v.extend_from_slice(&last[loc_dim..loc_dim + 3]);
        // Order-free aggregates over the window.
        let counts: Vec<f64> = self.steps.iter().map(|s| s[loc_dim]).collect();
        let n = counts.len() as f64;
        let mean = counts.iter().sum::<f64>() / n;
        let max = counts.iter().copied().fold(0.0f64, f64::max);
        let active = counts.iter().filter(|&&c| c > 0.0).count() as f64 / n;
        let mpjp_days = self.steps.iter().filter(|s| s[loc_dim + 2] > 0.5).count() as f64 / n;
        v.extend_from_slice(&[mean, max, active, mpjp_days]);
        v
    }
}

/// A labeled dataset with its 70/20/10 split (§V-A).
#[derive(Debug)]
pub struct Dataset {
    /// All examples, in deterministic order.
    pub examples: Vec<SequenceExample>,
    /// Feature configuration used.
    pub config: FeatureConfig,
}

/// Borrowed train/validation/test views.
#[derive(Debug)]
pub struct DataSplit<'a> {
    /// 70% training examples.
    pub train: Vec<&'a SequenceExample>,
    /// 20% validation examples.
    pub validation: Vec<&'a SequenceExample>,
    /// 10% test examples.
    pub test: Vec<&'a SequenceExample>,
}

/// FNV-1a based string bucket hash.
fn bucket(s: &str, buckets: usize, salt: u64) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ salt;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h % buckets as u64) as usize
}

/// Build per-day features for one path.
fn step_features(
    cfg: &FeatureConfig,
    loc: &JsonPathLocation,
    count: u32,
    datediff: u32,
) -> Vec<f64> {
    let mut v = vec![0.0; cfg.feature_dim()];
    v[bucket(&loc.database, cfg.location_buckets, 1)] = 1.0;
    v[cfg.location_buckets + bucket(&loc.table, cfg.location_buckets, 2)] = 1.0;
    v[2 * cfg.location_buckets + bucket(&loc.column, cfg.location_buckets, 3)] = 1.0;
    let base = 3 * cfg.location_buckets;
    v[base] = f64::from(count).min(50.0) / 50.0;
    v[base + 1] = f64::from(count).ln_1p() / 5.0;
    v[base + 2] = if count >= 2 { 1.0 } else { 0.0 };
    v[base + 3] = f64::from(datediff) / cfg.window as f64;
    v
}

/// Build the dataset: one example per (path, prediction day) over
/// `[window, max_day - 1]`, so every step has both history and a next-day
/// label.
pub fn build_dataset(collector: &JsonPathCollector, config: FeatureConfig) -> Dataset {
    let mut examples = Vec::new();
    let max_day = collector.max_day();
    let w = config.window as u32;
    if max_day < w + 1 {
        return Dataset { examples, config };
    }
    for loc in collector.locations() {
        // Prediction days stride by the window so examples don't overlap
        // too heavily (keeps the dataset size manageable while covering the
        // trace).
        let mut day = w;
        while day < max_day {
            let start = day - w;
            let steps: Vec<Vec<f64>> = (0..w)
                .map(|t| {
                    let d = start + t;
                    let count = collector.count_on(loc, d);
                    let datediff = day - d;
                    step_features(&config, loc, count, datediff)
                })
                .collect();
            let labels: Vec<bool> = (0..w)
                .map(|t| collector.is_mpjp(loc, start + t + 1))
                .collect();
            examples.push(SequenceExample {
                location: loc.clone(),
                day,
                steps,
                labels,
            });
            day += w;
        }
    }
    Dataset { examples, config }
}

impl Dataset {
    /// Deterministic 70/20/10 split by example hash.
    pub fn split(&self) -> DataSplit<'_> {
        let mut train = Vec::new();
        let mut validation = Vec::new();
        let mut test = Vec::new();
        for (i, ex) in self.examples.iter().enumerate() {
            let h = bucket(&format!("{}:{}:{i}", ex.location.key(), ex.day), 10, 7);
            match h {
                0..=6 => train.push(ex),
                7 | 8 => validation.push(ex),
                _ => test.push(ex),
            }
        }
        DataSplit {
            train,
            validation,
            test,
        }
    }

    /// Fraction of positive final labels (class balance diagnostics).
    pub fn positive_fraction(&self) -> f64 {
        if self.examples.is_empty() {
            return 0.0;
        }
        let pos = self.examples.iter().filter(|e| e.final_label()).count();
        pos as f64 / self.examples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxson_trace::{QueryRecord, SynthConfig, SyntheticTrace, TraceSynthesizer};

    fn collector_from(trace: &SyntheticTrace) -> JsonPathCollector {
        let mut c = JsonPathCollector::new();
        c.observe_all(trace.queries.iter());
        c
    }

    fn tiny_trace() -> SyntheticTrace {
        TraceSynthesizer::new(SynthConfig {
            days: 21,
            tables: 5,
            users: 10,
            templates_per_user: 2,
            adhoc_per_day: 3,
            ..Default::default()
        })
        .generate()
    }

    #[test]
    fn examples_have_window_shape() {
        let trace = tiny_trace();
        let c = collector_from(&trace);
        let cfg = FeatureConfig::default();
        let dim = cfg.feature_dim();
        let ds = build_dataset(&c, cfg);
        assert!(!ds.examples.is_empty());
        for ex in &ds.examples {
            assert_eq!(ex.steps.len(), 7);
            assert_eq!(ex.labels.len(), 7);
            assert!(ex.steps.iter().all(|s| s.len() == dim));
            assert_eq!(ex.flattened().len(), 7 * dim);
        }
    }

    #[test]
    fn labels_match_collector_ground_truth() {
        let trace = tiny_trace();
        let c = collector_from(&trace);
        let ds = build_dataset(&c, FeatureConfig::default());
        let ex = &ds.examples[0];
        let w = 7u32;
        let start = ex.day - w;
        for (t, &label) in ex.labels.iter().enumerate() {
            assert_eq!(label, c.is_mpjp(&ex.location, start + t as u32 + 1));
        }
    }

    #[test]
    fn split_is_70_20_10ish_and_disjoint() {
        let trace = tiny_trace();
        let c = collector_from(&trace);
        let ds = build_dataset(&c, FeatureConfig::default());
        let split = ds.split();
        let total = ds.examples.len();
        assert_eq!(
            split.train.len() + split.validation.len() + split.test.len(),
            total
        );
        let tf = split.train.len() as f64 / total as f64;
        assert!(tf > 0.55 && tf < 0.85, "train fraction {tf}");
    }

    #[test]
    fn dataset_has_both_classes() {
        let trace = tiny_trace();
        let c = collector_from(&trace);
        let ds = build_dataset(&c, FeatureConfig::default());
        let pos = ds.positive_fraction();
        assert!(pos > 0.02 && pos < 0.98, "positive fraction {pos}");
    }

    #[test]
    fn short_trace_yields_empty_dataset() {
        let mut c = JsonPathCollector::new();
        c.observe(&QueryRecord {
            query_id: 0,
            user_id: 0,
            day: 2,
            hour: 0,
            recurrence: maxson_trace::model::RecurrenceClass::Daily,
            paths: vec![JsonPathLocation::new("d", "t", "c", "$.a")],
        });
        let ds = build_dataset(&c, FeatureConfig::default());
        assert!(ds.examples.is_empty());
        assert_eq!(ds.positive_fraction(), 0.0);
    }

    #[test]
    fn window_size_is_respected() {
        let trace = tiny_trace();
        let c = collector_from(&trace);
        let ds = build_dataset(
            &c,
            FeatureConfig {
                window: 14,
                ..Default::default()
            },
        );
        assert!(ds.examples.iter().all(|e| e.steps.len() == 14));
    }
}
