//! Linear classifiers over flattened sequence features: logistic
//! regression (LR) and a linear SVM — Table III's first two baselines.

use maxson_testkit::rng::{Rng, SliceRandom};

use crate::features::SequenceExample;
use crate::linalg::{dot, sgd_step_vec, sigmoid};
use crate::MpjpModel;

/// The training loss of a [`LinearModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loss {
    /// Log loss — logistic regression.
    Logistic,
    /// Hinge loss — linear SVM.
    Hinge,
}

/// Training hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct LinearConfig {
    /// SGD epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Weight applied to positive examples (class imbalance).
    pub positive_weight: f64,
    /// RNG seed (example shuffling).
    pub seed: u64,
}

impl Default for LinearConfig {
    fn default() -> Self {
        LinearConfig {
            epochs: 30,
            lr: 0.1,
            l2: 1e-4,
            positive_weight: 2.0,
            seed: 17,
        }
    }
}

/// A trained linear classifier on flattened window features.
#[derive(Debug, Clone)]
pub struct LinearModel {
    weights: Vec<f64>,
    bias: f64,
    loss: Loss,
    /// Decision threshold on the score (tuned on validation if desired).
    pub threshold: f64,
}

impl LinearModel {
    /// Train on the final-step labels of `examples`.
    pub fn train(examples: &[&SequenceExample], loss: Loss, config: LinearConfig) -> Self {
        let dim = examples.first().map_or(0, |e| e.static_features().len());
        let mut weights = vec![0.0; dim];
        let mut bias = 0.0;
        let mut rng = Rng::seed_from_u64(config.seed);
        let mut order: Vec<usize> = (0..examples.len()).collect();
        let flat: Vec<(Vec<f64>, bool)> = examples
            .iter()
            .map(|e| (e.static_features(), e.final_label()))
            .collect();
        for epoch in 0..config.epochs {
            order.shuffle(&mut rng);
            let lr = config.lr / (1.0 + epoch as f64 * 0.1);
            for &i in &order {
                let (x, label) = &flat[i];
                let score = dot(&weights, x) + bias;
                let w_class = if *label { config.positive_weight } else { 1.0 };
                let mut grad_scale = match loss {
                    Loss::Logistic => {
                        let y = if *label { 1.0 } else { 0.0 };
                        sigmoid(score) - y
                    }
                    Loss::Hinge => {
                        let y = if *label { 1.0 } else { -1.0 };
                        if y * score < 1.0 {
                            -y
                        } else {
                            0.0
                        }
                    }
                };
                grad_scale *= w_class;
                if grad_scale != 0.0 {
                    let grad: Vec<f64> = x
                        .iter()
                        .zip(&weights)
                        .map(|(xi, wi)| grad_scale * xi + config.l2 * wi)
                        .collect();
                    sgd_step_vec(&mut weights, &grad, lr, 10.0);
                    bias -= lr * grad_scale;
                }
            }
        }
        LinearModel {
            weights,
            bias,
            loss,
            threshold: 0.0,
        }
    }

    /// Raw decision score of an example.
    pub fn score(&self, example: &SequenceExample) -> f64 {
        dot(&self.weights, &example.static_features()) + self.bias
    }
}

impl MpjpModel for LinearModel {
    fn predict(&self, example: &SequenceExample) -> bool {
        self.score(example) > self.threshold
    }

    fn name(&self) -> &'static str {
        match self.loss {
            Loss::Logistic => "LR",
            Loss::Hinge => "SVM",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxson_trace::JsonPathLocation;

    /// Build a toy example whose final label is `label` and whose features
    /// carry the signal `count >= 2` at the last step.
    fn example(signal: f64, label: bool) -> SequenceExample {
        SequenceExample {
            location: JsonPathLocation::new("d", "t", "c", "$.x"),
            day: 7,
            steps: (0..4)
                .map(|t| vec![if t == 3 { signal } else { 0.0 }, 1.0])
                .collect(),
            labels: vec![false, false, false, label],
        }
    }

    fn toy_set() -> Vec<SequenceExample> {
        let mut v = Vec::new();
        for i in 0..40 {
            let label = i % 2 == 0;
            let signal = if label { 1.0 } else { -1.0 };
            v.push(example(signal, label));
        }
        v
    }

    #[test]
    fn lr_learns_separable_signal() {
        let data = toy_set();
        let refs: Vec<&SequenceExample> = data.iter().collect();
        let model = LinearModel::train(&refs, Loss::Logistic, LinearConfig::default());
        let correct = refs
            .iter()
            .filter(|e| model.predict(e) == e.final_label())
            .count();
        assert_eq!(correct, refs.len(), "LR should fit separable data");
        assert_eq!(model.name(), "LR");
    }

    #[test]
    fn svm_learns_separable_signal() {
        let data = toy_set();
        let refs: Vec<&SequenceExample> = data.iter().collect();
        let model = LinearModel::train(&refs, Loss::Hinge, LinearConfig::default());
        let correct = refs
            .iter()
            .filter(|e| model.predict(e) == e.final_label())
            .count();
        assert_eq!(correct, refs.len(), "SVM should fit separable data");
        assert_eq!(model.name(), "SVM");
    }

    #[test]
    fn training_on_empty_is_safe() {
        let model = LinearModel::train(&[], Loss::Logistic, LinearConfig::default());
        let e = example(1.0, true);
        // Zero-dimensional weights: dot of empty slices is 0... but the
        // example has features; score uses zip so extra features are
        // ignored.
        assert!(!model.predict(&e) || model.predict(&e));
    }
}
