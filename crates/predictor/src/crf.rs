#![allow(clippy::needless_range_loop)] // index loops mirror the math notation
//! A binary linear-chain CRF layer over LSTM emissions.
//!
//! Following the paper's construction (§IV-A): the label sequence scores
//! produced by the LSTM are fed into a CRF layer, which learns the context
//! relation between labels (transition potentials between MPJP and
//! non-MPJP) and decodes the jointly most probable label sequence with the
//! Viterbi algorithm. Transition potentials are estimated from training
//! label sequences by maximum likelihood (log relative frequencies with
//! Laplace smoothing), and combined with the emission log-probabilities at
//! decode time.

use crate::features::SequenceExample;
use crate::linalg::log_sum_exp;
use crate::lstm::LstmLabeler;
use crate::MpjpModel;

/// Transition potentials of the binary chain.
#[derive(Debug, Clone)]
pub struct CrfLayer {
    /// `trans[a][b]` = log potential of moving from label `a` to label `b`.
    pub trans: [[f64; 2]; 2],
    /// `start[b]` = log potential of starting in label `b`.
    pub start: [f64; 2],
    /// Weight given to emissions relative to transitions.
    pub emission_weight: f64,
}

impl CrfLayer {
    /// Estimate transition potentials from gold label sequences.
    pub fn fit(sequences: &[&[bool]]) -> Self {
        let mut counts = [[1.0f64; 2]; 2]; // Laplace smoothing
        let mut starts = [1.0f64; 2];
        for seq in sequences {
            if let Some(&first) = seq.first() {
                starts[usize::from(first)] += 1.0;
            }
            for w in seq.windows(2) {
                counts[usize::from(w[0])][usize::from(w[1])] += 1.0;
            }
        }
        let mut trans = [[0.0; 2]; 2];
        for a in 0..2 {
            let total: f64 = counts[a].iter().sum();
            for b in 0..2 {
                trans[a][b] = (counts[a][b] / total).ln();
            }
        }
        let stotal: f64 = starts.iter().sum();
        let start = [(starts[0] / stotal).ln(), (starts[1] / stotal).ln()];
        CrfLayer {
            trans,
            start,
            emission_weight: 1.0,
        }
    }

    /// Viterbi decoding: the most probable label sequence given per-step
    /// emission log-scores `[neg, pos]`.
    pub fn viterbi(&self, emissions: &[[f64; 2]]) -> Vec<bool> {
        let n = emissions.len();
        if n == 0 {
            return Vec::new();
        }
        let ew = self.emission_weight;
        let mut delta = [
            self.start[0] + ew * emissions[0][0],
            self.start[1] + ew * emissions[0][1],
        ];
        let mut backptr: Vec<[usize; 2]> = Vec::with_capacity(n);
        backptr.push([0, 0]);
        for e in emissions.iter().skip(1) {
            let mut next = [f64::NEG_INFINITY; 2];
            let mut bp = [0usize; 2];
            for b in 0..2 {
                for a in 0..2 {
                    let score = delta[a] + self.trans[a][b] + ew * e[b];
                    if score > next[b] {
                        next[b] = score;
                        bp[b] = a;
                    }
                }
            }
            delta = next;
            backptr.push(bp);
        }
        // Trace back.
        let mut labels = vec![false; n];
        let mut cur = usize::from(delta[1] > delta[0]);
        labels[n - 1] = cur == 1;
        for t in (1..n).rev() {
            cur = backptr[t][cur];
            labels[t - 1] = cur == 1;
        }
        labels
    }

    /// Log partition function over all label sequences (forward algorithm);
    /// exposed for testing the chain's probabilistic consistency.
    pub fn log_partition(&self, emissions: &[[f64; 2]]) -> f64 {
        if emissions.is_empty() {
            return 0.0;
        }
        let ew = self.emission_weight;
        let mut alpha = [
            self.start[0] + ew * emissions[0][0],
            self.start[1] + ew * emissions[0][1],
        ];
        for e in emissions.iter().skip(1) {
            let mut next = [0.0f64; 2];
            for (b, nb) in next.iter_mut().enumerate() {
                *nb = log_sum_exp(&[
                    alpha[0] + self.trans[0][b] + ew * e[b],
                    alpha[1] + self.trans[1][b] + ew * e[b],
                ]);
            }
            alpha = next;
        }
        log_sum_exp(&alpha)
    }

    /// Score of one specific label sequence.
    pub fn sequence_score(&self, emissions: &[[f64; 2]], labels: &[bool]) -> f64 {
        if emissions.is_empty() {
            return 0.0;
        }
        let ew = self.emission_weight;
        let mut s = self.start[usize::from(labels[0])] + ew * emissions[0][usize::from(labels[0])];
        for t in 1..emissions.len() {
            let a = usize::from(labels[t - 1]);
            let b = usize::from(labels[t]);
            s += self.trans[a][b] + ew * emissions[t][b];
        }
        s
    }
}

/// The hybrid model of the paper: LSTM emissions + CRF decoding.
#[derive(Debug)]
pub struct LstmCrf {
    /// Emission model.
    pub lstm: LstmLabeler,
    /// Label-chain layer.
    pub crf: CrfLayer,
}

impl LstmCrf {
    /// Train the LSTM on `examples`, then fit the CRF on their gold label
    /// sequences.
    pub fn train(examples: &[&SequenceExample], lstm_config: crate::lstm::LstmConfig) -> Self {
        let lstm = LstmLabeler::train(examples, lstm_config);
        let label_seqs: Vec<&[bool]> = examples.iter().map(|e| e.labels.as_slice()).collect();
        let crf = CrfLayer::fit(&label_seqs);
        LstmCrf { lstm, crf }
    }

    /// Decode the full label sequence for one example.
    pub fn decode(&self, example: &SequenceExample) -> Vec<bool> {
        self.crf.viterbi(&self.lstm.emissions(example))
    }
}

impl MpjpModel for LstmCrf {
    fn predict(&self, example: &SequenceExample) -> bool {
        self.decode(example).last().copied().unwrap_or(false)
    }

    fn name(&self) -> &'static str {
        "LSTM+CRF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sticky_crf() -> CrfLayer {
        // Labels strongly persist: P(b|b)=0.9, P(n|n)=0.9.
        CrfLayer {
            trans: [[0.9f64.ln(), 0.1f64.ln()], [0.1f64.ln(), 0.9f64.ln()]],
            start: [0.5f64.ln(), 0.5f64.ln()],
            emission_weight: 1.0,
        }
    }

    #[test]
    fn viterbi_follows_strong_emissions() {
        let crf = sticky_crf();
        let em = vec![[0.0, -10.0], [0.0, -10.0], [-10.0, 0.0]];
        assert_eq!(crf.viterbi(&em), vec![false, false, true]);
    }

    #[test]
    fn viterbi_smooths_isolated_flips() {
        let crf = sticky_crf();
        // A weak positive blip in a run of negatives gets smoothed away.
        let em = vec![
            [0.0, -3.0],
            [-0.5, -0.4], // weakly positive
            [0.0, -3.0],
            [0.0, -3.0],
        ];
        assert_eq!(crf.viterbi(&em), vec![false, false, false, false]);
    }

    #[test]
    fn viterbi_empty_sequence() {
        let crf = sticky_crf();
        assert!(crf.viterbi(&[]).is_empty());
    }

    #[test]
    fn fit_learns_persistence() {
        // Sequences with long runs -> diagonal transitions dominate.
        let seqs: Vec<Vec<bool>> = vec![
            vec![false, false, false, true, true, true],
            vec![true, true, true, false, false, false],
        ];
        let refs: Vec<&[bool]> = seqs.iter().map(Vec::as_slice).collect();
        let crf = CrfLayer::fit(&refs);
        assert!(crf.trans[0][0] > crf.trans[0][1]);
        assert!(crf.trans[1][1] > crf.trans[1][0]);
    }

    #[test]
    fn partition_dominates_any_single_sequence() {
        let crf = sticky_crf();
        let em = vec![[-0.3, -1.2], [-0.7, -0.7], [-1.0, -0.4]];
        let z = crf.log_partition(&em);
        for bits in 0..8u8 {
            let labels: Vec<bool> = (0..3).map(|t| bits >> t & 1 == 1).collect();
            let s = crf.sequence_score(&em, &labels);
            assert!(s <= z + 1e-9, "sequence score {s} exceeds partition {z}");
        }
        // And the partition equals log-sum-exp of all sequence scores.
        let scores: Vec<f64> = (0..8u8)
            .map(|bits| {
                let labels: Vec<bool> = (0..3).map(|t| bits >> t & 1 == 1).collect();
                crf.sequence_score(&em, &labels)
            })
            .collect();
        assert!((log_sum_exp(&scores) - z).abs() < 1e-9);
    }

    #[test]
    fn viterbi_matches_bruteforce_argmax() {
        let crf = CrfLayer {
            trans: [[-0.2, -1.7], [-1.1, -0.4]],
            start: [-0.9, -0.5],
            emission_weight: 1.3,
        };
        let em = vec![[-0.1, -2.0], [-1.5, -0.2], [-0.8, -0.6], [-2.0, -0.1]];
        let decoded = crf.viterbi(&em);
        let mut best = (f64::NEG_INFINITY, Vec::new());
        for bits in 0..16u8 {
            let labels: Vec<bool> = (0..4).map(|t| bits >> t & 1 == 1).collect();
            let s = crf.sequence_score(&em, &labels);
            if s > best.0 {
                best = (s, labels);
            }
        }
        assert_eq!(decoded, best.1);
    }
}
