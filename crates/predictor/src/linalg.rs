#![allow(clippy::needless_range_loop)] // index loops mirror the math notation
//! Minimal dense linear algebra on `Vec<f64>`.

use maxson_testkit::rng::Rng;

/// A row-major dense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Row-major data, `rows * cols` long.
    pub data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Xavier-style uniform initialization in `[-s, s]` with
    /// `s = sqrt(6 / (rows + cols))`.
    pub fn xavier(rows: usize, cols: usize, rng: &mut Rng) -> Self {
        let s = (6.0 / (rows + cols) as f64).sqrt();
        Matrix {
            rows,
            cols,
            data: (0..rows * cols).map(|_| rng.gen_range(-s..s)).collect(),
        }
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// `y = W x` (matrix-vector product).
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.cols);
        let mut y = vec![0.0; self.rows];
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            y[r] = dot(row, x);
        }
        y
    }

    /// Accumulate the outer product `self += scale * a b^T`.
    pub fn add_outer(&mut self, a: &[f64], b: &[f64], scale: f64) {
        debug_assert_eq!(a.len(), self.rows);
        debug_assert_eq!(b.len(), self.cols);
        for r in 0..self.rows {
            let base = r * self.cols;
            let ar = a[r] * scale;
            for c in 0..self.cols {
                self.data[base + c] += ar * b[c];
            }
        }
    }

    /// `y = W^T x` (transposed matrix-vector product).
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.rows);
        let mut y = vec![0.0; self.cols];
        for r in 0..self.rows {
            let base = r * self.cols;
            let xr = x[r];
            for c in 0..self.cols {
                y[c] += self.data[base + c] * xr;
            }
        }
        y
    }

    /// In-place SGD step: `self -= lr * grad`, with gradient clipping at
    /// `clip` per element.
    pub fn sgd_step(&mut self, grad: &Matrix, lr: f64, clip: f64) {
        for (w, g) in self.data.iter_mut().zip(&grad.data) {
            *w -= lr * g.clamp(-clip, clip);
        }
    }
}

/// Dot product.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Numerically-stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Hyperbolic tangent (re-exported for symmetry with [`sigmoid`]).
#[inline]
pub fn tanh(x: f64) -> f64 {
    x.tanh()
}

/// In-place vector SGD step with clipping.
pub fn sgd_step_vec(w: &mut [f64], grad: &[f64], lr: f64, clip: f64) {
    for (wi, gi) in w.iter_mut().zip(grad) {
        *wi -= lr * gi.clamp(-clip, clip);
    }
}

/// log(sum(exp(xs))) computed stably.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m.is_infinite() {
        return m;
    }
    m + xs.iter().map(|x| (x - m).exp()).sum::<f64>().ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_and_transpose() {
        let mut w = Matrix::zeros(2, 3);
        // [[1,2,3],[4,5,6]]
        for (i, v) in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0].iter().enumerate() {
            w.data[i] = *v;
        }
        assert_eq!(w.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(w.matvec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
        assert_eq!(w.get(1, 2), 6.0);
    }

    #[test]
    fn outer_product_accumulates() {
        let mut w = Matrix::zeros(2, 2);
        w.add_outer(&[1.0, 2.0], &[3.0, 4.0], 0.5);
        assert_eq!(w.data, vec![1.5, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn sigmoid_stability() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!(sigmoid(-1000.0) < 1e-10);
    }

    #[test]
    fn log_sum_exp_stable() {
        let v = log_sum_exp(&[1000.0, 1000.0]);
        assert!((v - (1000.0 + 2f64.ln())).abs() < 1e-9);
        assert_eq!(
            log_sum_exp(&[f64::NEG_INFINITY, f64::NEG_INFINITY]),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = Rng::seed_from_u64(0);
        let w = Matrix::xavier(10, 10, &mut rng);
        let s = (6.0 / 20.0f64).sqrt();
        assert!(w.data.iter().all(|v| v.abs() <= s));
        assert!(w.data.iter().any(|v| *v != 0.0));
    }

    #[test]
    fn sgd_clips() {
        let mut w = Matrix::zeros(1, 1);
        let mut g = Matrix::zeros(1, 1);
        g.data[0] = 100.0;
        w.sgd_step(&g, 0.1, 1.0);
        assert!((w.data[0] + 0.1).abs() < 1e-12);
    }
}
