#![allow(clippy::needless_range_loop)] // index loops mirror the math notation
//! A single-layer LSTM sequence labeler trained with BPTT.
//!
//! This is the Uni-LSTM baseline of Table IV and the emission layer of the
//! hybrid LSTM+CRF model. Per step `t` it consumes the day-`t` feature
//! vector and emits a logit for "the path is an MPJP on day t+1"; training
//! minimizes per-step sigmoid cross-entropy, exactly the setup §IV-A
//! describes.

use maxson_testkit::rng::{Rng, SliceRandom};

use crate::features::SequenceExample;
use crate::linalg::{sigmoid, Matrix};
use crate::MpjpModel;

/// LSTM hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct LstmConfig {
    /// Hidden state width.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
    /// Positive-class weight in the per-step loss.
    pub positive_weight: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LstmConfig {
    fn default() -> Self {
        LstmConfig {
            hidden: 16,
            epochs: 25,
            lr: 0.05,
            positive_weight: 2.0,
            seed: 31,
        }
    }
}

/// Trained LSTM parameters. Gate order in the stacked matrices:
/// input (i), forget (f), cell candidate (g), output (o).
#[derive(Debug)]
pub struct LstmLabeler {
    /// Input weights, `(4*hidden) x input_dim`.
    wx: Matrix,
    /// Recurrent weights, `(4*hidden) x hidden`.
    wh: Matrix,
    /// Gate biases, `4*hidden`.
    b: Vec<f64>,
    /// Output projection, `hidden`.
    wy: Vec<f64>,
    /// Output bias.
    by: f64,
    hidden: usize,
    /// Decision threshold on the final-step probability.
    pub threshold: f64,
}

/// Per-step forward cache used by BPTT.
struct StepCache {
    x: Vec<f64>,
    i: Vec<f64>,
    f: Vec<f64>,
    g: Vec<f64>,
    o: Vec<f64>,
    c: Vec<f64>,
    h: Vec<f64>,
    c_prev: Vec<f64>,
    h_prev: Vec<f64>,
    logit: f64,
}

impl LstmLabeler {
    /// Train on per-step labels of `examples`.
    pub fn train(examples: &[&SequenceExample], config: LstmConfig) -> Self {
        let input_dim = examples
            .first()
            .map_or(1, |e| e.steps.first().map_or(1, Vec::len));
        let h = config.hidden;
        let mut rng = Rng::seed_from_u64(config.seed);
        let mut model = LstmLabeler {
            wx: Matrix::xavier(4 * h, input_dim, &mut rng),
            wh: Matrix::xavier(4 * h, h, &mut rng),
            b: vec![0.0; 4 * h],
            wy: (0..h).map(|_| 0.1 * (rng.gen::<f64>() - 0.5)).collect(),
            by: 0.0,
            hidden: h,
            threshold: 0.5,
        };
        // Forget-gate bias starts positive (standard trick: remember by
        // default).
        for k in h..2 * h {
            model.b[k] = 1.0;
        }
        let mut order: Vec<usize> = (0..examples.len()).collect();
        for epoch in 0..config.epochs {
            order.shuffle(&mut rng);
            let lr = config.lr / (1.0 + 0.05 * epoch as f64);
            for &idx in &order {
                model.train_one(examples[idx], lr, config.positive_weight);
            }
        }
        model
    }

    /// Forward one sequence, returning per-step caches.
    fn forward(&self, steps: &[Vec<f64>]) -> Vec<StepCache> {
        let h = self.hidden;
        let mut caches = Vec::with_capacity(steps.len());
        let mut h_prev = vec![0.0; h];
        let mut c_prev = vec![0.0; h];
        for x in steps {
            let mut z = self.wx.matvec(x);
            let zh = self.wh.matvec(&h_prev);
            for k in 0..4 * h {
                z[k] += zh[k] + self.b[k];
            }
            let i: Vec<f64> = (0..h).map(|k| sigmoid(z[k])).collect();
            let f: Vec<f64> = (0..h).map(|k| sigmoid(z[h + k])).collect();
            let g: Vec<f64> = (0..h).map(|k| z[2 * h + k].tanh()).collect();
            let o: Vec<f64> = (0..h).map(|k| sigmoid(z[3 * h + k])).collect();
            let c: Vec<f64> = (0..h).map(|k| f[k] * c_prev[k] + i[k] * g[k]).collect();
            let hv: Vec<f64> = (0..h).map(|k| o[k] * c[k].tanh()).collect();
            let logit = crate::linalg::dot(&self.wy, &hv) + self.by;
            caches.push(StepCache {
                x: x.clone(),
                i,
                f,
                g,
                o,
                c: c.clone(),
                h: hv.clone(),
                c_prev: c_prev.clone(),
                h_prev: h_prev.clone(),
                logit,
            });
            h_prev = hv;
            c_prev = c;
        }
        caches
    }

    /// One BPTT step on one example.
    fn train_one(&mut self, ex: &SequenceExample, lr: f64, pos_w: f64) {
        let h = self.hidden;
        let caches = self.forward(&ex.steps);
        let t_max = caches.len();
        let mut d_wx = Matrix::zeros(4 * h, self.wx.cols);
        let mut d_wh = Matrix::zeros(4 * h, h);
        let mut d_b = vec![0.0; 4 * h];
        let mut d_wy = vec![0.0; h];
        let mut d_by = 0.0;
        let mut dh_next = vec![0.0; h];
        let mut dc_next = vec![0.0; h];
        for t in (0..t_max).rev() {
            let cache = &caches[t];
            let y = if ex.labels[t] { 1.0 } else { 0.0 };
            let w_class = if ex.labels[t] { pos_w } else { 1.0 };
            let dlogit = (sigmoid(cache.logit) - y) * w_class;
            for k in 0..h {
                d_wy[k] += dlogit * cache.h[k];
            }
            d_by += dlogit;
            // dh = dlogit * wy + dh from the future.
            let mut dh: Vec<f64> = (0..h).map(|k| dlogit * self.wy[k] + dh_next[k]).collect();
            let mut dc: Vec<f64> = (0..h)
                .map(|k| {
                    let tanh_c = cache.c[k].tanh();
                    dc_next[k] + dh[k] * cache.o[k] * (1.0 - tanh_c * tanh_c)
                })
                .collect();
            // Gate gradients (pre-activation).
            let mut dz = vec![0.0; 4 * h];
            for k in 0..h {
                let di = dc[k] * cache.g[k];
                let df = dc[k] * cache.c_prev[k];
                let dg = dc[k] * cache.i[k];
                let do_ = dh[k] * cache.c[k].tanh();
                dz[k] = di * cache.i[k] * (1.0 - cache.i[k]);
                dz[h + k] = df * cache.f[k] * (1.0 - cache.f[k]);
                dz[2 * h + k] = dg * (1.0 - cache.g[k] * cache.g[k]);
                dz[3 * h + k] = do_ * cache.o[k] * (1.0 - cache.o[k]);
            }
            d_wx.add_outer(&dz, &cache.x, 1.0);
            d_wh.add_outer(&dz, &cache.h_prev, 1.0);
            for k in 0..4 * h {
                d_b[k] += dz[k];
            }
            // Propagate to the previous step.
            let dh_prev = self.wh.matvec_t(&dz);
            dh[..h].copy_from_slice(&dh_prev[..h]);
            for k in 0..h {
                dc[k] *= cache.f[k];
            }
            dh_next = dh;
            dc_next = dc;
        }
        self.wx.sgd_step(&d_wx, lr, 5.0);
        self.wh.sgd_step(&d_wh, lr, 5.0);
        crate::linalg::sgd_step_vec(&mut self.b, &d_b, lr, 5.0);
        crate::linalg::sgd_step_vec(&mut self.wy, &d_wy, lr, 5.0);
        self.by -= lr * d_by.clamp(-5.0, 5.0);
    }

    /// Per-step probabilities for a sequence.
    pub fn step_probabilities(&self, ex: &SequenceExample) -> Vec<f64> {
        self.forward(&ex.steps)
            .iter()
            .map(|c| sigmoid(c.logit))
            .collect()
    }

    /// Per-step emission scores as `(score_negative, score_positive)` pairs
    /// in log space — the CRF layer's input.
    pub fn emissions(&self, ex: &SequenceExample) -> Vec<[f64; 2]> {
        self.step_probabilities(ex)
            .iter()
            .map(|&p| {
                let p = p.clamp(1e-9, 1.0 - 1e-9);
                [(1.0 - p).ln(), p.ln()]
            })
            .collect()
    }
}

impl MpjpModel for LstmLabeler {
    fn predict(&self, example: &SequenceExample) -> bool {
        self.step_probabilities(example)
            .last()
            .is_some_and(|&p| p > self.threshold)
    }

    fn name(&self) -> &'static str {
        "LSTM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxson_trace::JsonPathLocation;

    /// A temporal task a static model struggles with: the label at the last
    /// step is the feature from TWO steps earlier (requires memory).
    fn memory_set(n: usize) -> Vec<SequenceExample> {
        let mut v = Vec::new();
        for i in 0..n {
            let bit = i % 2 == 0;
            let steps = vec![
                vec![if bit { 1.0 } else { 0.0 }, 1.0],
                vec![0.0, 1.0],
                vec![0.0, 1.0],
            ];
            v.push(SequenceExample {
                location: JsonPathLocation::new("d", "t", "c", "$.x"),
                day: 3,
                steps,
                labels: vec![false, false, bit],
            });
        }
        v
    }

    #[test]
    fn lstm_learns_temporal_dependency() {
        let data = memory_set(80);
        let refs: Vec<&SequenceExample> = data.iter().collect();
        let model = LstmLabeler::train(
            &refs,
            LstmConfig {
                epochs: 60,
                lr: 0.1,
                hidden: 8,
                ..Default::default()
            },
        );
        let correct = refs
            .iter()
            .filter(|e| model.predict(e) == e.final_label())
            .count();
        assert!(
            correct as f64 / refs.len() as f64 > 0.95,
            "LSTM learned {correct}/{}",
            refs.len()
        );
    }

    #[test]
    fn probabilities_and_emissions_shapes() {
        let data = memory_set(4);
        let refs: Vec<&SequenceExample> = data.iter().collect();
        let model = LstmLabeler::train(
            &refs,
            LstmConfig {
                epochs: 2,
                ..Default::default()
            },
        );
        let probs = model.step_probabilities(refs[0]);
        assert_eq!(probs.len(), 3);
        assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
        let em = model.emissions(refs[0]);
        assert_eq!(em.len(), 3);
        assert!(em.iter().all(|e| e[0] <= 0.0 && e[1] <= 0.0));
        assert_eq!(model.name(), "LSTM");
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let data = memory_set(10);
        let refs: Vec<&SequenceExample> = data.iter().collect();
        let cfg = LstmConfig {
            epochs: 3,
            ..Default::default()
        };
        let a = LstmLabeler::train(&refs, cfg);
        let b = LstmLabeler::train(&refs, cfg);
        assert_eq!(a.step_probabilities(refs[0]), b.step_probabilities(refs[0]));
    }
}
