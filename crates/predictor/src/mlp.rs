#![allow(clippy::needless_range_loop)] // index loops mirror the math notation
//! A small feed-forward neural network (the MLPClassifier baseline).

use maxson_testkit::rng::{Rng, SliceRandom};

use crate::features::SequenceExample;
use crate::linalg::{sigmoid, Matrix};
use crate::MpjpModel;

/// MLP hyperparameters.
#[derive(Debug, Clone)]
pub struct MlpConfig {
    /// Hidden layer widths (the paper tunes `(50, 10, 2)`; a smaller net
    /// suffices at our scale).
    pub hidden: Vec<usize>,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
    /// Positive-class weight.
    pub positive_weight: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden: vec![32, 8],
            epochs: 40,
            lr: 0.05,
            positive_weight: 2.0,
            seed: 23,
        }
    }
}

/// A trained MLP on flattened window features.
#[derive(Debug)]
pub struct MlpClassifier {
    /// Weight matrices, one per layer (hidden layers + output).
    layers: Vec<Matrix>,
    /// Biases, one per layer.
    biases: Vec<Vec<f64>>,
    /// Decision threshold on the output probability.
    pub threshold: f64,
}

impl MlpClassifier {
    /// Train on the final-step labels of `examples`.
    pub fn train(examples: &[&SequenceExample], config: MlpConfig) -> Self {
        let input_dim = examples.first().map_or(1, |e| e.static_features().len());
        let mut rng = Rng::seed_from_u64(config.seed);
        let mut dims = vec![input_dim];
        dims.extend(&config.hidden);
        dims.push(1);
        let mut layers: Vec<Matrix> = Vec::new();
        let mut biases: Vec<Vec<f64>> = Vec::new();
        for w in dims.windows(2) {
            layers.push(Matrix::xavier(w[1], w[0], &mut rng));
            biases.push(vec![0.0; w[1]]);
        }
        let flat: Vec<(Vec<f64>, bool)> = examples
            .iter()
            .map(|e| (e.static_features(), e.final_label()))
            .collect();
        let mut order: Vec<usize> = (0..flat.len()).collect();
        for epoch in 0..config.epochs {
            order.shuffle(&mut rng);
            let lr = config.lr / (1.0 + 0.05 * epoch as f64);
            for &i in &order {
                let (x, label) = &flat[i];
                // Forward: ReLU hidden, sigmoid output.
                let mut activations: Vec<Vec<f64>> = vec![x.clone()];
                for (li, (w, b)) in layers.iter().zip(&biases).enumerate() {
                    let mut z = w.matvec(activations.last().expect("non-empty"));
                    for (zi, bi) in z.iter_mut().zip(b) {
                        *zi += bi;
                    }
                    let a = if li + 1 == layers.len() {
                        vec![sigmoid(z[0])]
                    } else {
                        z.iter().map(|v| v.max(0.0)).collect()
                    };
                    activations.push(a);
                }
                let out = activations.last().expect("output layer")[0];
                let y = if *label { 1.0 } else { 0.0 };
                let w_class = if *label { config.positive_weight } else { 1.0 };
                // Backward.
                let mut delta = vec![(out - y) * w_class]; // dL/dz at output
                for li in (0..layers.len()).rev() {
                    let a_prev = &activations[li];
                    // Gradient step for this layer.
                    let mut grad_w = Matrix::zeros(layers[li].rows, layers[li].cols);
                    grad_w.add_outer(&delta, a_prev, 1.0);
                    // Propagate before updating weights (use old weights).
                    let mut delta_prev = layers[li].matvec_t(&delta);
                    if li > 0 {
                        // ReLU derivative w.r.t. the previous activation.
                        for (d, a) in delta_prev.iter_mut().zip(a_prev) {
                            if *a <= 0.0 {
                                *d = 0.0;
                            }
                        }
                    }
                    layers[li].sgd_step(&grad_w, lr, 5.0);
                    for (b, d) in biases[li].iter_mut().zip(&delta) {
                        *b -= lr * d.clamp(-5.0, 5.0);
                    }
                    delta = delta_prev;
                }
            }
        }
        MlpClassifier {
            layers,
            biases,
            threshold: 0.5,
        }
    }

    /// Output probability for an example.
    pub fn probability(&self, example: &SequenceExample) -> f64 {
        let mut a = example.static_features();
        for (li, (w, b)) in self.layers.iter().zip(&self.biases).enumerate() {
            let mut z = w.matvec(&a);
            for (zi, bi) in z.iter_mut().zip(b) {
                *zi += bi;
            }
            a = if li + 1 == self.layers.len() {
                vec![sigmoid(z[0])]
            } else {
                z.iter().map(|v| v.max(0.0)).collect()
            };
        }
        a[0]
    }
}

impl MpjpModel for MlpClassifier {
    fn predict(&self, example: &SequenceExample) -> bool {
        self.probability(example) > self.threshold
    }

    fn name(&self) -> &'static str {
        "MLPClassifier"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxson_trace::JsonPathLocation;

    /// XOR-ish non-linear toy problem over two features: label = (a>0) XOR
    /// (b>0). A linear model cannot fit this; the MLP should.
    fn xor_set() -> Vec<SequenceExample> {
        let mut v = Vec::new();
        for i in 0..200 {
            let a = if i % 2 == 0 { 1.0 } else { -1.0 };
            let b = if (i / 2) % 2 == 0 { 1.0 } else { -1.0 };
            let label = (a > 0.0) != (b > 0.0);
            v.push(SequenceExample {
                location: JsonPathLocation::new("d", "t", "c", "$.x"),
                day: 1,
                steps: vec![vec![a, b]],
                labels: vec![label],
            });
        }
        v
    }

    #[test]
    fn mlp_fits_xor() {
        let data = xor_set();
        let refs: Vec<&SequenceExample> = data.iter().collect();
        let model = MlpClassifier::train(
            &refs,
            MlpConfig {
                epochs: 300,
                lr: 0.1,
                hidden: vec![8],
                ..Default::default()
            },
        );
        let correct = refs
            .iter()
            .filter(|e| model.predict(e) == e.final_label())
            .count();
        assert!(
            correct as f64 / refs.len() as f64 > 0.95,
            "MLP got {correct}/{} on XOR",
            refs.len()
        );
    }

    #[test]
    fn linear_model_cannot_fit_xor() {
        use crate::linear::{LinearConfig, LinearModel, Loss};
        let data = xor_set();
        let refs: Vec<&SequenceExample> = data.iter().collect();
        let model = LinearModel::train(&refs, Loss::Logistic, LinearConfig::default());
        let correct = refs
            .iter()
            .filter(|e| model.predict(e) == e.final_label())
            .count();
        assert!(
            correct as f64 / (refs.len() as f64) < 0.8,
            "a linear model should not fit XOR, got {correct}/{}",
            refs.len()
        );
    }

    #[test]
    fn probability_in_unit_interval() {
        let data = xor_set();
        let refs: Vec<&SequenceExample> = data.iter().collect();
        let model = MlpClassifier::train(&refs, MlpConfig::default());
        for e in &refs {
            let p = model.probability(e);
            assert!((0.0..=1.0).contains(&p));
        }
        assert_eq!(model.name(), "MLPClassifier");
    }
}
