//! The owned JSON document model.

use std::collections::BTreeMap;
use std::fmt;

use crate::serializer::to_string;

/// A parsed JSON value.
///
/// Objects preserve insertion order via a `Vec` of pairs — field order matters
/// for round-tripping and for the Mison parser's speculative field positions.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number. Integers within `i64` range are kept exact.
    Number(JsonNumber),
    /// A string (already unescaped).
    String(String),
    /// An array of values.
    Array(Vec<JsonValue>),
    /// An object: ordered list of `(key, value)` pairs.
    Object(Vec<(String, JsonValue)>),
}

/// A JSON number: exact integer when possible, otherwise a double.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JsonNumber {
    /// Exact signed integer.
    Int(i64),
    /// IEEE-754 double.
    Float(f64),
}

impl JsonNumber {
    /// The value as an `f64` (lossy for very large integers).
    pub fn as_f64(self) -> f64 {
        match self {
            JsonNumber::Int(i) => i as f64,
            JsonNumber::Float(f) => f,
        }
    }

    /// The value as an `i64`, when it is an exact integer.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            JsonNumber::Int(i) => Some(i),
            JsonNumber::Float(f) => {
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 {
                    Some(f as i64)
                } else {
                    None
                }
            }
        }
    }
}

impl fmt::Display for JsonNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonNumber::Int(i) => write!(f, "{i}"),
            JsonNumber::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{:.1}", x)
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}

impl JsonValue {
    /// Shorthand constructor for an object from pairs.
    pub fn object(pairs: Vec<(String, JsonValue)>) -> Self {
        JsonValue::Object(pairs)
    }

    /// `true` if the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// Borrow the string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean content, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric content as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The numeric content as `i64`, if this is an exactly-integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Borrow the elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow the pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(v) => Some(v),
            _ => None,
        }
    }

    /// Look up a field by name (first match wins, as in Hive).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Index into an array.
    pub fn index(&self, i: usize) -> Option<&JsonValue> {
        match self {
            JsonValue::Array(v) => v.get(i),
            _ => None,
        }
    }

    /// Number of immediate children (object fields or array elements).
    pub fn len(&self) -> usize {
        match self {
            JsonValue::Array(v) => v.len(),
            JsonValue::Object(p) => p.len(),
            _ => 0,
        }
    }

    /// `true` when [`JsonValue::len`] is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Render the way Hive's `get_json_object` renders results: strings are
    /// returned raw (no quotes), other scalars in their literal form, and
    /// containers re-serialized compactly.
    pub fn to_hive_string(&self) -> String {
        match self {
            JsonValue::String(s) => s.clone(),
            JsonValue::Null => "null".to_string(),
            JsonValue::Bool(b) => b.to_string(),
            JsonValue::Number(n) => n.to_string(),
            other => to_string(other),
        }
    }

    /// Maximum nesting depth of the value (a scalar has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            JsonValue::Array(v) => 1 + v.iter().map(JsonValue::depth).max().unwrap_or(0),
            JsonValue::Object(p) => 1 + p.iter().map(|(_, v)| v.depth()).max().unwrap_or(0),
            _ => 1,
        }
    }

    /// Total number of leaf properties, used by the data generators to match
    /// Table II's "property number in JSON" column.
    pub fn property_count(&self) -> usize {
        match self {
            JsonValue::Object(p) => p
                .iter()
                .map(|(_, v)| match v {
                    JsonValue::Object(_) | JsonValue::Array(_) => v.property_count(),
                    _ => 1,
                })
                .sum(),
            JsonValue::Array(v) => v.iter().map(JsonValue::property_count).sum(),
            _ => 1,
        }
    }

    /// Collect all root-to-leaf JSONPaths in the document, in `$.a.b[0]`
    /// syntax. Arrays contribute indexed steps.
    pub fn leaf_paths(&self) -> Vec<String> {
        let mut out = Vec::new();
        fn walk(v: &JsonValue, prefix: &mut String, out: &mut Vec<String>) {
            match v {
                JsonValue::Object(pairs) => {
                    for (k, child) in pairs {
                        let len = prefix.len();
                        prefix.push('.');
                        prefix.push_str(k);
                        walk(child, prefix, out);
                        prefix.truncate(len);
                    }
                }
                JsonValue::Array(items) => {
                    for (i, child) in items.iter().enumerate() {
                        let len = prefix.len();
                        prefix.push_str(&format!("[{i}]"));
                        walk(child, prefix, out);
                        prefix.truncate(len);
                    }
                }
                _ => out.push(prefix.clone()),
            }
        }
        let mut prefix = String::from("$");
        walk(self, &mut prefix, &mut out);
        out
    }

    /// A canonical ordering key so values can be compared in a `BTreeMap`
    /// during tests.
    pub fn sort_key(&self) -> String {
        to_string(self)
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}
impl From<i64> for JsonValue {
    fn from(i: i64) -> Self {
        JsonValue::Number(JsonNumber::Int(i))
    }
}
impl From<f64> for JsonValue {
    fn from(f: f64) -> Self {
        JsonValue::Number(JsonNumber::Float(f))
    }
}
impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::String(s.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::String(s)
    }
}
impl<T: Into<JsonValue>> From<Vec<T>> for JsonValue {
    fn from(v: Vec<T>) -> Self {
        JsonValue::Array(v.into_iter().map(Into::into).collect())
    }
}
impl From<BTreeMap<String, JsonValue>> for JsonValue {
    fn from(m: BTreeMap<String, JsonValue>) -> Self {
        JsonValue::Object(m.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JsonValue {
        JsonValue::Object(vec![
            ("id".to_string(), JsonValue::from(7i64)),
            (
                "item".to_string(),
                JsonValue::Object(vec![
                    ("name".to_string(), JsonValue::from("apple")),
                    ("tags".to_string(), JsonValue::from(vec!["a", "b"])),
                ]),
            ),
        ])
    }

    #[test]
    fn get_and_index_navigate() {
        let v = sample();
        assert_eq!(v.get("id").unwrap().as_i64(), Some(7));
        let tags = v.get("item").unwrap().get("tags").unwrap();
        assert_eq!(tags.index(1).unwrap().as_str(), Some("b"));
        assert_eq!(tags.index(2), None);
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn depth_and_property_count() {
        let v = sample();
        assert_eq!(v.depth(), 4); // object -> object -> array -> scalar
        assert_eq!(v.property_count(), 4); // id, name, 2 tags
        assert_eq!(JsonValue::Null.depth(), 1);
    }

    #[test]
    fn leaf_paths_enumerate_all_leaves() {
        let v = sample();
        let paths = v.leaf_paths();
        assert_eq!(
            paths,
            vec!["$.id", "$.item.name", "$.item.tags[0]", "$.item.tags[1]"]
        );
    }

    #[test]
    fn hive_string_rendering() {
        assert_eq!(JsonValue::from("x").to_hive_string(), "x");
        assert_eq!(JsonValue::from(3i64).to_hive_string(), "3");
        assert_eq!(JsonValue::Bool(true).to_hive_string(), "true");
        assert_eq!(JsonValue::Null.to_hive_string(), "null");
        assert_eq!(JsonValue::from(vec![1i64, 2]).to_hive_string(), "[1,2]");
    }

    #[test]
    fn number_conversions() {
        assert_eq!(JsonNumber::Int(5).as_f64(), 5.0);
        assert_eq!(JsonNumber::Float(5.0).as_i64(), Some(5));
        assert_eq!(JsonNumber::Float(5.5).as_i64(), None);
        assert_eq!(JsonNumber::Int(5).to_string(), "5");
        assert_eq!(JsonNumber::Float(2.5).to_string(), "2.5");
        assert_eq!(JsonNumber::Float(2.0).to_string(), "2.0");
    }

    #[test]
    fn duplicate_keys_first_wins() {
        let v = JsonValue::Object(vec![
            ("k".to_string(), JsonValue::from(1i64)),
            ("k".to_string(), JsonValue::from(2i64)),
        ]);
        assert_eq!(v.get("k").unwrap().as_i64(), Some(1));
    }
}
