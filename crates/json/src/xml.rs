//! XML support — the paper's stated extension target (§VI: "Maxson's
//! pre-caching technique can also be applied to other data formats, such
//! as XML").
//!
//! The bridge is a conversion into the same [`JsonValue`] model, so every
//! downstream piece — JSONPath evaluation, the cacher, the plan rewriter —
//! works on XML-derived values unchanged:
//!
//! * an element becomes an object,
//! * attributes become `@name` fields,
//! * child elements become fields; repeated names collapse into an array,
//! * text content becomes the `#text` field (or the element's value when
//!   it has no attributes/children),
//! * entities (`&amp;` etc., `&#NN;`, `&#xHH;`) and CDATA are decoded,
//! * comments, processing instructions, and the XML prolog are skipped.
//!
//! So `<order id="7"><item>apple</item><item>pear</item></order>` converts
//! to `{"order":{"@id":"7","item":["apple","pear"]}}` and the path
//! `$.order.item[0]` evaluates exactly like any JSON path.

use crate::error::{JsonError, Result};
use crate::value::JsonValue;

/// Parse an XML document into the JSON value model.
pub fn xml_to_value(input: &str) -> Result<JsonValue> {
    let mut p = XmlParser {
        bytes: input.as_bytes(),
        input,
        pos: 0,
    };
    p.skip_misc()?;
    let (name, value) = p.parse_element(0)?;
    p.skip_misc()?;
    if p.pos < p.bytes.len() {
        return Err(JsonError::TrailingData { offset: p.pos });
    }
    Ok(JsonValue::Object(vec![(name, value)]))
}

/// Convenience: parse XML and serialize the converted document as compact
/// JSON text (what a load-time converter would store in the warehouse).
pub fn xml_to_json(input: &str) -> Result<String> {
    Ok(crate::to_string(&xml_to_value(input)?))
}

const MAX_DEPTH: usize = 64;

struct XmlParser<'a> {
    bytes: &'a [u8],
    input: &'a str,
    pos: usize,
}

impl<'a> XmlParser<'a> {
    fn err(&self, expected: &'static str) -> JsonError {
        JsonError::UnexpectedChar {
            offset: self.pos,
            found: self.bytes.get(self.pos).copied(),
            expected,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    /// Skip whitespace, comments, PIs, and the prolog.
    fn skip_misc(&mut self) -> Result<()> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.consume_until("?>", "processing instruction")?;
            } else if self.starts_with("<!--") {
                self.consume_until("-->", "comment")?;
            } else if self.starts_with("<!DOCTYPE") {
                // Naive DOCTYPE skip (no internal subset support).
                self.consume_until(">", "DOCTYPE")?;
            } else {
                return Ok(());
            }
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn consume_until(&mut self, end: &str, context: &'static str) -> Result<()> {
        match self.input[self.pos..].find(end) {
            Some(off) => {
                self.pos += off + end.len();
                Ok(())
            }
            None => Err(JsonError::UnexpectedEof { context }),
        }
    }

    fn parse_name(&mut self) -> Result<String> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b':' | b'.') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("an XML name"));
        }
        Ok(self.input[start..self.pos].to_string())
    }

    /// Parse `<name attr="v"...> children </name>` starting at `<`.
    /// Returns `(name, converted value)`.
    fn parse_element(&mut self, depth: usize) -> Result<(String, JsonValue)> {
        if depth > MAX_DEPTH {
            return Err(JsonError::TooDeep { limit: MAX_DEPTH });
        }
        if self.bytes.get(self.pos) != Some(&b'<') {
            return Err(self.err("'<'"));
        }
        self.pos += 1;
        let name = self.parse_name()?;
        let mut fields: Vec<(String, JsonValue)> = Vec::new();
        // Attributes.
        loop {
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b'/') => {
                    self.pos += 1;
                    if self.bytes.get(self.pos) != Some(&b'>') {
                        return Err(self.err("'>' after '/'"));
                    }
                    self.pos += 1;
                    return Ok((name, finish_element(fields, String::new())));
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let attr = self.parse_name()?;
                    self.skip_ws();
                    if self.bytes.get(self.pos) != Some(&b'=') {
                        return Err(self.err("'=' in attribute"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = match self.bytes.get(self.pos) {
                        Some(q @ (b'"' | b'\'')) => *q,
                        _ => return Err(self.err("a quoted attribute value")),
                    };
                    self.pos += 1;
                    let start = self.pos;
                    while self.bytes.get(self.pos).is_some_and(|&b| b != quote) {
                        self.pos += 1;
                    }
                    if self.bytes.get(self.pos) != Some(&quote) {
                        return Err(JsonError::UnexpectedEof {
                            context: "attribute value",
                        });
                    }
                    let raw = &self.input[start..self.pos];
                    self.pos += 1;
                    push_child(
                        &mut fields,
                        format!("@{attr}"),
                        JsonValue::from(decode_entities(raw)?),
                    );
                }
                None => {
                    return Err(JsonError::UnexpectedEof {
                        context: "element start tag",
                    })
                }
            }
        }
        // Children and text.
        let mut text = String::new();
        loop {
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.parse_name()?;
                if close != name {
                    return Err(JsonError::InvalidString {
                        offset: self.pos,
                        reason: "mismatched closing tag",
                    });
                }
                self.skip_ws();
                if self.bytes.get(self.pos) != Some(&b'>') {
                    return Err(self.err("'>' in closing tag"));
                }
                self.pos += 1;
                return Ok((name, finish_element(fields, text.trim().to_string())));
            }
            if self.starts_with("<!--") {
                self.consume_until("-->", "comment")?;
                continue;
            }
            if self.starts_with("<![CDATA[") {
                self.pos += "<![CDATA[".len();
                let start = self.pos;
                self.consume_until("]]>", "CDATA")?;
                text.push_str(&self.input[start..self.pos - 3]);
                continue;
            }
            match self.bytes.get(self.pos) {
                Some(b'<') => {
                    let (child_name, child) = self.parse_element(depth + 1)?;
                    push_child(&mut fields, child_name, child);
                }
                Some(_) => {
                    let start = self.pos;
                    while self.bytes.get(self.pos).is_some_and(|&b| b != b'<') {
                        self.pos += 1;
                    }
                    text.push_str(&decode_entities(&self.input[start..self.pos])?);
                }
                None => {
                    return Err(JsonError::UnexpectedEof {
                        context: "element content",
                    })
                }
            }
        }
    }
}

/// Insert a child field; a repeated name collapses into an array.
fn push_child(fields: &mut Vec<(String, JsonValue)>, name: String, value: JsonValue) {
    if let Some((_, existing)) = fields.iter_mut().find(|(k, _)| *k == name) {
        match existing {
            JsonValue::Array(items) => items.push(value),
            other => {
                let prev = std::mem::replace(other, JsonValue::Null);
                *other = JsonValue::Array(vec![prev, value]);
            }
        }
    } else {
        fields.push((name, value));
    }
}

/// Build the element's value: a bare string when it has only text, an
/// object otherwise (text under `#text` if present).
fn finish_element(mut fields: Vec<(String, JsonValue)>, text: String) -> JsonValue {
    if fields.is_empty() {
        return JsonValue::from(text);
    }
    if !text.is_empty() {
        fields.push(("#text".to_string(), JsonValue::from(text)));
    }
    JsonValue::Object(fields)
}

/// Decode XML entities in `raw`.
fn decode_entities(raw: &str) -> Result<String> {
    if !raw.contains('&') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        let Some(semi) = rest.find(';') else {
            return Err(JsonError::InvalidString {
                offset: 0,
                reason: "unterminated entity",
            });
        };
        let entity = &rest[1..semi];
        match entity {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let code = u32::from_str_radix(&entity[2..], 16).map_err(|_| {
                    JsonError::InvalidString {
                        offset: 0,
                        reason: "bad hex character reference",
                    }
                })?;
                out.push(char::from_u32(code).ok_or(JsonError::InvalidString {
                    offset: 0,
                    reason: "invalid character reference",
                })?);
            }
            _ if entity.starts_with('#') => {
                let code: u32 = entity[1..].parse().map_err(|_| JsonError::InvalidString {
                    offset: 0,
                    reason: "bad character reference",
                })?;
                out.push(char::from_u32(code).ok_or(JsonError::InvalidString {
                    offset: 0,
                    reason: "invalid character reference",
                })?);
            }
            _ => {
                return Err(JsonError::InvalidString {
                    offset: 0,
                    reason: "unknown entity",
                })
            }
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::JsonPath;

    #[test]
    fn simple_element_with_text() {
        let v = xml_to_value("<greeting>hello</greeting>").unwrap();
        assert_eq!(v.get("greeting").unwrap().as_str(), Some("hello"));
    }

    #[test]
    fn attributes_and_children() {
        let v =
            xml_to_value(r#"<order id="7"><item>apple</item><total>12</total></order>"#).unwrap();
        let order = v.get("order").unwrap();
        assert_eq!(order.get("@id").unwrap().as_str(), Some("7"));
        assert_eq!(order.get("item").unwrap().as_str(), Some("apple"));
        assert_eq!(order.get("total").unwrap().as_str(), Some("12"));
    }

    #[test]
    fn repeated_children_become_arrays() {
        let v = xml_to_value("<o><i>a</i><i>b</i><i>c</i></o>").unwrap();
        let items = v.get("o").unwrap().get("i").unwrap().as_array().unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[1].as_str(), Some("b"));
    }

    #[test]
    fn jsonpath_works_on_converted_xml() {
        let xml = r#"<order id="7"><item sku="A1">apple</item><item sku="B2">pear</item></order>"#;
        let v = xml_to_value(xml).unwrap();
        let p = JsonPath::parse("$.order.item[1].#text").unwrap();
        assert_eq!(p.eval(&v).unwrap().as_str(), Some("pear"));
        let p = JsonPath::parse("$.order.item[0].@sku").unwrap();
        assert_eq!(p.eval(&v).unwrap().as_str(), Some("A1"));
        let p = JsonPath::parse("$.order.@id").unwrap();
        assert_eq!(p.eval(&v).unwrap().as_str(), Some("7"));
    }

    #[test]
    fn mixed_text_and_children() {
        let v = xml_to_value("<p>before<b>bold</b>after</p>").unwrap();
        let p = v.get("p").unwrap();
        assert_eq!(p.get("b").unwrap().as_str(), Some("bold"));
        assert_eq!(p.get("#text").unwrap().as_str(), Some("beforeafter"));
    }

    #[test]
    fn self_closing_and_empty() {
        let v = xml_to_value(r#"<a><b/><c x="1"/></a>"#).unwrap();
        let a = v.get("a").unwrap();
        assert_eq!(a.get("b").unwrap().as_str(), Some(""));
        assert_eq!(a.get("c").unwrap().get("@x").unwrap().as_str(), Some("1"));
    }

    #[test]
    fn entities_and_cdata() {
        let v = xml_to_value(r#"<t a="&lt;x&gt;">&amp;&#65;&#x42;<![CDATA[<raw & stuff>]]></t>"#)
            .unwrap();
        let t = v.get("t").unwrap();
        assert_eq!(t.get("@a").unwrap().as_str(), Some("<x>"));
        assert_eq!(t.get("#text").unwrap().as_str(), Some("&AB<raw & stuff>"));
    }

    #[test]
    fn prolog_comments_doctype_skipped() {
        let xml = "<?xml version=\"1.0\"?>\n<!DOCTYPE x>\n<!-- hi -->\n<x>1</x>\n<!-- bye -->";
        let v = xml_to_value(xml).unwrap();
        assert_eq!(v.get("x").unwrap().as_str(), Some("1"));
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in [
            "",
            "<a>",
            "<a></b>",
            "<a x=1></a>",
            "<a x=\"1></a>",
            "plain text",
            "<a>&nope;</a>",
            "<a>&#xZZ;</a>",
            "<a></a><b></b>",
        ] {
            assert!(xml_to_value(bad).is_err(), "expected error for {bad:?}");
        }
    }

    #[test]
    fn depth_limit() {
        let deep = "<a>".repeat(MAX_DEPTH + 2) + &"</a>".repeat(MAX_DEPTH + 2);
        assert!(matches!(
            xml_to_value(&deep),
            Err(JsonError::TooDeep { .. })
        ));
    }

    #[test]
    fn xml_to_json_round_trips_through_json_parser() {
        let json = xml_to_json(r#"<o id="1"><i>a</i><i>b</i></o>"#).unwrap();
        let doc = crate::parse(&json).unwrap();
        assert_eq!(
            doc.get("o")
                .unwrap()
                .get("i")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            2
        );
    }
}
