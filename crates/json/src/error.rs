//! Error types shared across the JSON substrate.

use std::fmt;

/// Result alias used throughout `maxson-json`.
pub type Result<T> = std::result::Result<T, JsonError>;

/// Errors raised while parsing JSON text or JSONPath expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// Unexpected byte while parsing JSON text.
    UnexpectedChar {
        /// Byte offset in the input where the error was detected.
        offset: usize,
        /// The offending byte (or `None` at end-of-input).
        found: Option<u8>,
        /// Human-readable description of what was expected.
        expected: &'static str,
    },
    /// Input ended in the middle of a value.
    UnexpectedEof {
        /// What the parser was in the middle of.
        context: &'static str,
    },
    /// A number literal could not be represented.
    InvalidNumber {
        /// Byte offset of the number literal.
        offset: usize,
    },
    /// An invalid escape sequence or raw control character inside a string.
    InvalidString {
        /// Byte offset of the problem.
        offset: usize,
        /// Description of the problem.
        reason: &'static str,
    },
    /// The document nests deeper than the configured limit.
    TooDeep {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// Trailing non-whitespace bytes after a complete document.
    TrailingData {
        /// Byte offset of the first trailing byte.
        offset: usize,
    },
    /// A JSONPath expression was malformed.
    InvalidPath {
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::UnexpectedChar {
                offset,
                found,
                expected,
            } => match found {
                Some(b) => write!(
                    f,
                    "unexpected byte {:?} at offset {offset}, expected {expected}",
                    *b as char
                ),
                None => write!(
                    f,
                    "unexpected end of input at offset {offset}, expected {expected}"
                ),
            },
            JsonError::UnexpectedEof { context } => {
                write!(f, "unexpected end of input while parsing {context}")
            }
            JsonError::InvalidNumber { offset } => {
                write!(f, "invalid number literal at offset {offset}")
            }
            JsonError::InvalidString { offset, reason } => {
                write!(f, "invalid string at offset {offset}: {reason}")
            }
            JsonError::TooDeep { limit } => {
                write!(f, "document exceeds maximum nesting depth of {limit}")
            }
            JsonError::TrailingData { offset } => {
                write!(f, "trailing data after document at offset {offset}")
            }
            JsonError::InvalidPath { reason } => write!(f, "invalid JSONPath: {reason}"),
        }
    }
}

impl std::error::Error for JsonError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = JsonError::UnexpectedChar {
            offset: 3,
            found: Some(b'x'),
            expected: "':'",
        };
        assert!(e.to_string().contains("offset 3"));
        let e = JsonError::TooDeep { limit: 64 };
        assert!(e.to_string().contains("64"));
        let e = JsonError::InvalidPath {
            reason: "empty".into(),
        };
        assert!(e.to_string().contains("empty"));
    }
}
