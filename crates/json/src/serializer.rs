//! Compact and pretty JSON writers for [`JsonValue`].

use crate::value::{JsonNumber, JsonValue};
use std::fmt::Write as _;

/// Serialize compactly (no whitespace). Round-trips through
/// [`crate::parse`].
pub fn to_string(v: &JsonValue) -> String {
    let mut out = String::new();
    write_value(&mut out, v);
    out
}

/// Serialize with two-space indentation, for human consumption (benchmark
/// reports, examples).
pub fn to_string_pretty(v: &JsonValue) -> String {
    let mut out = String::new();
    write_pretty(&mut out, v, 0);
    out
}

fn write_value(out: &mut String, v: &JsonValue) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(true) => out.push_str("true"),
        JsonValue::Bool(false) => out.push_str("false"),
        JsonValue::Number(n) => write_number(out, *n),
        JsonValue::String(s) => write_escaped(out, s),
        JsonValue::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        JsonValue::Object(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, v: &JsonValue, indent: usize) {
    match v {
        JsonValue::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        JsonValue::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_escaped(out, k);
                out.push_str(": ");
                write_pretty(out, val, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: JsonNumber) {
    match n {
        JsonNumber::Int(i) => {
            let _ = write!(out, "{i}");
        }
        JsonNumber::Float(f) => {
            if f.is_finite() {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    let _ = write!(out, "{:.1}", f);
                } else {
                    let _ = write!(out, "{f}");
                }
            } else {
                // JSON has no Inf/NaN; Hive renders them as null.
                out.push_str("null");
            }
        }
    }
}

/// Escape a string per RFC 8259 and append it, quoted.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn compact_round_trip() {
        let src = r#"{"a":[1,2.5,null,true],"b":{"c":"x\ny"}}"#;
        let v = parse(src).unwrap();
        let re = to_string(&v);
        assert_eq!(parse(&re).unwrap(), v);
    }

    #[test]
    fn escapes_are_emitted() {
        let v = JsonValue::from("a\"b\\c\nd\u{1}");
        assert_eq!(to_string(&v), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn float_formatting_keeps_type() {
        let v = parse("[2.0, 2.5]").unwrap();
        assert_eq!(to_string(&v), "[2.0,2.5]");
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        let v = JsonValue::from(f64::INFINITY);
        assert_eq!(to_string(&v), "null");
        let v = JsonValue::from(f64::NAN);
        assert_eq!(to_string(&v), "null");
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = parse(r#"{"a":[1,{"b":2}],"c":[]}"#).unwrap();
        let pretty = to_string_pretty(&v);
        assert!(pretty.contains('\n'));
        assert_eq!(parse(&pretty).unwrap(), v);
        // Empty containers stay on one line.
        assert!(pretty.contains("[]"));
    }
}
