//! A two-stage tape parser in the style of On-Demand JSON
//! (Keiser & Lemire, VLDB 2021).
//!
//! Stage 1 reuses the Mison-style [`StructuralIndex`] (SWAR string-interior
//! bitmap + bracket matching); stage 2 walks the masked bytes once to build
//! a *typed tape*: one entry per JSON node carrying its kind, its raw byte
//! span, and a **skip marker** — the tape index one past the node's whole
//! subtree. Path navigation then follows skip markers: probing `$.f12`
//! hops key→key in O(1) per sibling, never materializing (or even
//! re-scanning) the subtrees of the eleven fields it jumps over. The
//! entries jumped over are counted as `nodes_skipped`, surfaced through
//! `ExecMetrics` and EXPLAIN ANALYZE.
//!
//! The build validates exactly the document set the DOM parser
//! ([`crate::parse`]) accepts — same depth limit, number grammar,
//! escape/surrogate rules, and trailing-data rejection — so
//! `TapeDoc::build(..).is_err()` iff `parse(..).is_err()` and the engine's
//! NULL-on-malformed semantics are byte-identical across parser modes.
//! What the tape *defers* is materialization: no `String`/`Vec`/`JsonValue`
//! is built for any node the query never touches. Queried leaves render
//! straight out of the input span into `Arc<str>` cells; only a queried
//! container (or a wildcard step) falls back to DOM-parsing its slice,
//! which keeps rendering byte-identical to the Jackson path.

use std::sync::Arc;

use crate::error::{JsonError, Result};
use crate::mison::{steps_to_path, StructuralIndex};
use crate::parser::{Parser, MAX_DEPTH};
use crate::path::{JsonPath, Step};

/// What one tape entry is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// `{...}` — children alternate Key / value-subtree.
    Object,
    /// `[...]` — children are value subtrees.
    Array,
    /// An object key (span includes the quotes).
    Key,
    /// A string value (span includes the quotes).
    String,
    /// A number literal.
    Number,
    /// `true`.
    True,
    /// `false`.
    False,
    /// `null`.
    Null,
}

/// One tape entry: kind, raw byte span, and the skip marker.
///
/// Invariants (checked by `debug_assert`s and the differential suite):
/// * entries appear in document order; a container's children occupy
///   `idx+1 .. skip` contiguously;
/// * `skip` is the index one past the node's subtree — for scalars and keys
///   that is the next entry, for containers it jumps the whole subtree;
/// * a `Key` entry's `skip` jumps past its *value* subtree too (key at `k`,
///   value at `k+1`, next key — or object end — at `skip`).
#[derive(Debug, Clone, Copy)]
pub struct TapeNode {
    /// Entry kind.
    pub kind: NodeKind,
    /// Byte offset of the token's first byte.
    pub start: u32,
    /// Byte offset one past the token (for containers: past the close
    /// bracket).
    pub end: u32,
    /// Tape index one past this entry's subtree.
    pub skip: u32,
}

/// Work counters for one navigation: how many tape entries skip markers
/// jumped over without visiting.
#[derive(Debug, Default, Clone, Copy)]
pub struct TapeStats {
    /// Tape entries never visited because a skip marker hopped over them
    /// (non-matching siblings' subtrees, and the remainder of a container
    /// once the target child is found).
    pub nodes_skipped: u64,
}

/// A built tape over one record. Borrows the input; rendered values copy
/// only the queried span into an `Arc<str>`.
#[derive(Debug)]
pub struct TapeDoc<'a> {
    input: &'a str,
    nodes: Vec<TapeNode>,
}

impl<'a> TapeDoc<'a> {
    /// Build the tape for one record: structural index first, then one
    /// validating walk that emits typed entries. Errors on exactly the
    /// inputs [`crate::parse`] errors on.
    pub fn build(input: &'a str) -> Result<TapeDoc<'a>> {
        let index = StructuralIndex::build(input);
        let mut b = Builder {
            bytes: input.as_bytes(),
            pos: 0,
            index: &index,
            nodes: Vec::new(),
        };
        b.value(0)?;
        b.skip_ws();
        if b.pos < b.bytes.len() {
            return Err(JsonError::TrailingData { offset: b.pos });
        }
        Ok(TapeDoc {
            input,
            nodes: b.nodes,
        })
    }

    /// Number of tape entries (the root value's subtree).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The tape entries, in document order.
    pub fn nodes(&self) -> &[TapeNode] {
        &self.nodes
    }

    /// Evaluate one path, rendering the result the way `get_json_object`
    /// does. Skipped-entry counts accumulate into `stats`.
    pub fn eval_path(&self, path: &JsonPath, stats: &mut TapeStats) -> Option<Arc<str>> {
        self.eval_steps(0, path.steps(), stats)
    }

    /// Evaluate many paths off this one tape (the tape-mode half of
    /// intra-query shared parsing). Entry `i` answers `paths[i]`, exactly
    /// as [`Self::eval_path`] would.
    pub fn eval_paths(&self, paths: &[JsonPath], stats: &mut TapeStats) -> Vec<Option<Arc<str>>> {
        paths.iter().map(|p| self.eval_path(p, stats)).collect()
    }

    fn eval_steps(
        &self,
        mut node: usize,
        steps: &[Step],
        stats: &mut TapeStats,
    ) -> Option<Arc<str>> {
        for (si, step) in steps.iter().enumerate() {
            match step {
                Step::Field(name) => {
                    if self.nodes[node].kind != NodeKind::Object {
                        return None;
                    }
                    node = self.find_field(node, name, stats)?;
                }
                Step::Index(want) => {
                    if self.nodes[node].kind != NodeKind::Array {
                        return None;
                    }
                    node = self.find_index(node, *want, stats)?;
                }
                Step::Wildcard => {
                    // Wildcards collect across elements; materialize just
                    // this subtree and finish with the DOM evaluator (same
                    // fallback the Mison projector uses).
                    let doc = crate::parse(self.span(node)).ok()?;
                    let rest = steps_to_path(&steps[si..]);
                    return rest.eval(&doc).map(|v| Arc::from(v.to_hive_string()));
                }
            }
        }
        Some(self.render(node))
    }

    /// First-wins field lookup (Hive semantics, matching `JsonValue::get`
    /// and the Mison colon scan): probe keys in document order, jump each
    /// non-matching value subtree via its skip marker, return the first
    /// match's value entry.
    fn find_field(&self, obj: usize, name: &str, stats: &mut TapeStats) -> Option<usize> {
        let end = self.nodes[obj].skip as usize;
        let mut k = obj + 1;
        while k < end {
            let key = self.nodes[k];
            debug_assert_eq!(key.kind, NodeKind::Key);
            let value = k + 1;
            let next = key.skip as usize;
            if self.key_matches(&key, name) {
                // Everything after the matched value is never visited.
                stats.nodes_skipped += (end - next) as u64;
                return Some(value);
            }
            // The non-matching value's subtree is hopped over unvisited
            // (the key entry itself was examined).
            stats.nodes_skipped += (next - value) as u64;
            k = next;
        }
        None
    }

    /// Array element lookup: hop `want` sibling subtrees, return the
    /// element's entry.
    fn find_index(&self, arr: usize, want: usize, stats: &mut TapeStats) -> Option<usize> {
        let end = self.nodes[arr].skip as usize;
        let mut child = arr + 1;
        let mut i = 0usize;
        while child < end {
            let next = self.nodes[child].skip as usize;
            if i == want {
                stats.nodes_skipped += (end - next) as u64;
                return Some(child);
            }
            stats.nodes_skipped += (next - child) as u64;
            child = next;
            i += 1;
        }
        None
    }

    fn key_matches(&self, key: &TapeNode, name: &str) -> bool {
        let raw = &self.input[key.start as usize + 1..key.end as usize - 1];
        if !raw.contains('\\') {
            return raw == name;
        }
        // Escaped key: unescape through the validated string machinery.
        let quoted = &self.input[key.start as usize..key.end as usize];
        Parser::new(quoted)
            .parse_string()
            .map(|s| s == name)
            .unwrap_or(false)
    }

    fn span(&self, node: usize) -> &'a str {
        let n = &self.nodes[node];
        &self.input[n.start as usize..n.end as usize]
    }

    /// Render one entry the way `get_json_object` renders values: strings
    /// unescaped/unquoted straight from the span, scalars normalized
    /// through the value model, containers re-serialized compactly.
    fn render(&self, node: usize) -> Arc<str> {
        let text = self.span(node);
        match self.nodes[node].kind {
            NodeKind::String => {
                let inner = &text[1..text.len() - 1];
                if !inner.contains('\\') {
                    Arc::from(inner)
                } else {
                    Arc::from(
                        Parser::new(text)
                            .parse_string()
                            .expect("string span validated at build"),
                    )
                }
            }
            NodeKind::Number => Arc::from(
                Parser::new(text)
                    .parse_number()
                    .expect("number span validated at build")
                    .to_hive_string(),
            ),
            NodeKind::True => Arc::from("true"),
            NodeKind::False => Arc::from("false"),
            NodeKind::Null => Arc::from("null"),
            NodeKind::Object | NodeKind::Array => {
                let v = crate::parse(text).expect("container span validated at build");
                Arc::from(crate::to_string(&v))
            }
            NodeKind::Key => unreachable!("keys are never rendered as values"),
        }
    }
}

/// Build one tape and evaluate one path. Invalid documents yield `None`,
/// matching [`crate::get_json_object`].
pub fn project_path(record: &str, path: &JsonPath, stats: &mut TapeStats) -> Option<Arc<str>> {
    TapeDoc::build(record).ok()?.eval_path(path, stats)
}

/// Build one tape and evaluate many paths off it. Invalid documents yield
/// all-`None`, matching [`crate::get_json_objects`].
pub fn project_paths(
    record: &str,
    paths: &[JsonPath],
    stats: &mut TapeStats,
) -> Vec<Option<Arc<str>>> {
    match TapeDoc::build(record) {
        Ok(tape) => tape.eval_paths(paths, stats),
        Err(_) => vec![None; paths.len()],
    }
}

/// The stage-2 walk: mirrors the DOM parser's control flow token for token
/// (same depth accounting, same grammar checks) but emits tape entries
/// instead of building values, using the structural index for string ends.
struct Builder<'a, 'i> {
    bytes: &'a [u8],
    pos: usize,
    index: &'i StructuralIndex<'a>,
    nodes: Vec<TapeNode>,
}

impl Builder<'_, '_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8, expected: &'static str) -> Result<()> {
        match self.peek() {
            Some(x) if x == b => {
                self.pos += 1;
                Ok(())
            }
            found => Err(JsonError::UnexpectedChar {
                offset: self.pos,
                found,
                expected,
            }),
        }
    }

    fn value(&mut self, depth: usize) -> Result<()> {
        if depth > MAX_DEPTH {
            return Err(JsonError::TooDeep { limit: MAX_DEPTH });
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.container(NodeKind::Object, depth),
            Some(b'[') => self.container(NodeKind::Array, depth),
            Some(b'"') => {
                let start = self.pos;
                self.string_span()?;
                self.push_scalar(NodeKind::String, start);
                Ok(())
            }
            Some(b't') => self.keyword("true", NodeKind::True),
            Some(b'f') => self.keyword("false", NodeKind::False),
            Some(b'n') => self.keyword("null", NodeKind::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            found => Err(JsonError::UnexpectedChar {
                offset: self.pos,
                found,
                expected: "a JSON value",
            }),
        }
    }

    fn push_scalar(&mut self, kind: NodeKind, start: usize) {
        let idx = self.nodes.len();
        self.nodes.push(TapeNode {
            kind,
            start: start as u32,
            end: self.pos as u32,
            skip: (idx + 1) as u32,
        });
    }

    fn keyword(&mut self, kw: &'static str, kind: NodeKind) -> Result<()> {
        let start = self.pos;
        let end = self.pos + kw.len();
        if self.bytes.len() >= end && &self.bytes[self.pos..end] == kw.as_bytes() {
            self.pos = end;
            self.push_scalar(kind, start);
            Ok(())
        } else {
            Err(JsonError::UnexpectedChar {
                offset: self.pos,
                found: self.peek(),
                expected: "a JSON keyword (true/false/null)",
            })
        }
    }

    fn container(&mut self, kind: NodeKind, depth: usize) -> Result<()> {
        let idx = self.nodes.len();
        let start = self.pos;
        self.nodes.push(TapeNode {
            kind,
            start: start as u32,
            end: 0,
            skip: 0,
        });
        match kind {
            NodeKind::Object => self.object_body(depth)?,
            NodeKind::Array => self.array_body(depth)?,
            _ => unreachable!(),
        }
        self.nodes[idx].end = self.pos as u32;
        self.nodes[idx].skip = self.nodes.len() as u32;
        Ok(())
    }

    fn object_body(&mut self, depth: usize) -> Result<()> {
        self.expect(b'{', "'{'")?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            let kstart = self.pos;
            self.string_span()?;
            let kidx = self.nodes.len();
            self.nodes.push(TapeNode {
                kind: NodeKind::Key,
                start: kstart as u32,
                end: self.pos as u32,
                skip: 0,
            });
            self.skip_ws();
            self.expect(b':', "':'")?;
            self.value(depth + 1)?;
            self.nodes[kidx].skip = self.nodes.len() as u32;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                found => {
                    return Err(JsonError::UnexpectedChar {
                        offset: self.pos,
                        found,
                        expected: "',' or '}'",
                    })
                }
            }
        }
    }

    fn array_body(&mut self, depth: usize) -> Result<()> {
        self.expect(b'[', "'['")?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.value(depth + 1)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                found => {
                    return Err(JsonError::UnexpectedChar {
                        offset: self.pos,
                        found,
                        expected: "',' or ']'",
                    })
                }
            }
        }
    }

    /// Consume one string token. The closing quote comes from the
    /// structural index's string-interior bitmap (stage 1); the interior is
    /// then validated against the DOM parser's escape/surrogate/control
    /// rules without materializing the unescaped text.
    fn string_span(&mut self) -> Result<()> {
        self.expect(b'"', "'\"'")?;
        let start = self.pos;
        let mut close = None;
        let mut i = start;
        while i < self.bytes.len() {
            if self.bytes[i] == b'"' && !self.index.is_in_string(i) {
                close = Some(i);
                break;
            }
            i += 1;
        }
        let close = close.ok_or(JsonError::UnexpectedEof { context: "string" })?;
        self.validate_string_body(start, close)?;
        self.pos = close + 1;
        Ok(())
    }

    fn validate_string_body(&self, start: usize, end: usize) -> Result<()> {
        let mut pos = start;
        while pos < end {
            let b = self.bytes[pos];
            if b == b'\\' {
                pos += 1;
                if pos >= end {
                    return Err(JsonError::UnexpectedEof {
                        context: "string escape",
                    });
                }
                let esc = self.bytes[pos];
                pos += 1;
                match esc {
                    b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => {}
                    b'u' => {
                        let cp = self.hex4(&mut pos, end)?;
                        if (0xD800..0xDC00).contains(&cp) {
                            // High surrogate: requires an immediate \uXXXX
                            // low surrogate.
                            if pos + 1 < end
                                && self.bytes[pos] == b'\\'
                                && self.bytes[pos + 1] == b'u'
                            {
                                pos += 2;
                                let low = self.hex4(&mut pos, end)?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(JsonError::InvalidString {
                                        offset: pos,
                                        reason: "unpaired surrogate",
                                    });
                                }
                            } else {
                                return Err(JsonError::InvalidString {
                                    offset: pos,
                                    reason: "unpaired surrogate",
                                });
                            }
                        } else if (0xDC00..0xE000).contains(&cp) {
                            return Err(JsonError::InvalidString {
                                offset: pos,
                                reason: "unpaired low surrogate",
                            });
                        }
                    }
                    _ => {
                        return Err(JsonError::InvalidString {
                            offset: pos - 1,
                            reason: "unknown escape",
                        })
                    }
                }
            } else if b < 0x20 {
                return Err(JsonError::InvalidString {
                    offset: pos,
                    reason: "raw control character",
                });
            } else {
                pos += 1;
            }
        }
        Ok(())
    }

    fn hex4(&self, pos: &mut usize, end: usize) -> Result<u32> {
        if *pos + 4 > end {
            return Err(JsonError::UnexpectedEof {
                context: "unicode escape",
            });
        }
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bytes[*pos];
            let d = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a' + 10) as u32,
                b'A'..=b'F' => (b - b'A' + 10) as u32,
                _ => {
                    return Err(JsonError::InvalidString {
                        offset: *pos,
                        reason: "bad hex digit in unicode escape",
                    })
                }
            };
            v = v * 16 + d;
            *pos += 1;
        }
        Ok(v)
    }

    /// Consume one number token, enforcing the DOM parser's grammar
    /// (no leading zeros, no bare `.`/exponent). Conversion is deferred to
    /// rendering: every grammar-valid JSON number parses as `f64`.
    fn number(&mut self) -> Result<()> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(JsonError::InvalidNumber { offset: start }),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(JsonError::InvalidNumber { offset: start });
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(JsonError::InvalidNumber { offset: start });
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        self.push_scalar(NodeKind::Number, start);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tape_get(json: &str, path: &str) -> Option<String> {
        let p = JsonPath::parse(path).unwrap();
        let mut stats = TapeStats::default();
        project_path(json, &p, &mut stats).map(|s| s.to_string())
    }

    const RECORD: &str = r#"{"item_id": 1, "item_name": "apple, or \"fruit\"", "nested": {"a": {"b": 9}, "arr": [1,2,3]}, "turnover": 20.5, "flag": true, "nothing": null}"#;

    #[test]
    fn scalars_and_containers_render_like_jackson() {
        assert_eq!(tape_get(RECORD, "$.item_id").unwrap(), "1");
        assert_eq!(
            tape_get(RECORD, "$.item_name").unwrap(),
            "apple, or \"fruit\""
        );
        assert_eq!(tape_get(RECORD, "$.nested.a.b").unwrap(), "9");
        assert_eq!(tape_get(RECORD, "$.nested.a").unwrap(), r#"{"b":9}"#);
        assert_eq!(tape_get(RECORD, "$.nested.arr[1]").unwrap(), "2");
        assert_eq!(tape_get(RECORD, "$.nested.arr").unwrap(), "[1,2,3]");
        assert_eq!(tape_get(RECORD, "$.turnover").unwrap(), "20.5");
        assert_eq!(tape_get(RECORD, "$.flag").unwrap(), "true");
        assert_eq!(tape_get(RECORD, "$.nothing").unwrap(), "null");
        assert_eq!(tape_get(RECORD, "$.zzz"), None);
        assert_eq!(tape_get(RECORD, "$.nested.arr[9]"), None);
    }

    /// The tape must agree with the DOM oracle on every (record, path)
    /// pair, including misses, wildcards, and malformed records.
    #[test]
    fn matches_dom_oracle() {
        let records = [
            RECORD,
            r#"{"a":1}"#,
            r#"{"a":{"b":{"c":[true,false]}},"d":"x:y,{z}"}"#,
            r#"{ "s" : "he said \"hi\"" , "n" : -2.5e3 }"#,
            r#"{"empty":{},"arr":[],"deep":{"x":{"y":{"z":"w"}}}}"#,
            r#"{"items":[{"p":1},{"q":9},{"p":3}]}"#,
            r#"{"k":1,"k":2}"#,
            r#"{"we\"ird": "va\\l", "x": 1}"#,
            r#"[10, {"a": 20}, 30]"#,
            r#""bare string""#,
            "42",
            "null",
            "{broken",
            r#"{"a":1} x"#,
            "",
        ];
        let paths = [
            "$",
            "$.a",
            "$.a.b.c",
            "$.a.b.c[1]",
            "$.d",
            "$.s",
            "$.n",
            "$.empty",
            "$.arr",
            "$.deep.x.y.z",
            "$.items[*].p",
            "$.items[2].p",
            "$.k",
            "$.we\"ird",
            "$[1].a",
            "$[0]",
            "$.x",
        ];
        for rec in records {
            for path in paths {
                let Ok(p) = JsonPath::parse(path) else {
                    continue;
                };
                let dom = crate::get_json_object(rec, &p);
                let mut stats = TapeStats::default();
                let tape = project_path(rec, &p, &mut stats).map(|s| s.to_string());
                assert_eq!(tape, dom, "record={rec} path={path}");
            }
        }
    }

    /// Build must accept/reject exactly the DOM parser's document set.
    #[test]
    fn build_errors_mirror_dom_parser() {
        let cases = [
            "",
            "{",
            "[",
            "{\"a\"}",
            "{\"a\":}",
            "[1,]",
            "{\"a\":1,}",
            "tru",
            "01",
            "1.",
            "1e",
            "\"abc",
            "{\"a\":1} x",
            "nul",
            "+1",
            "\u{1}",
            "\"a\u{1}b\"",
            r#""\ud83d""#,
            r#""\udc00""#,
            r#""😀""#,
            r#""\uZZZZ""#,
            r#""\q""#,
            "9223372036854775807",
            "92233720368547758080",
            "-0",
            "1e999",
            "5e-324",
            " \t\r\n{ \"a\" : [ 1 , 2 ] }\n ",
            r#"{"k":"a,b:{c}"}"#,
        ];
        for case in cases {
            assert_eq!(
                TapeDoc::build(case).is_err(),
                crate::parse(case).is_err(),
                "accept/reject drift on {case:?}"
            );
        }
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(TapeDoc::build(&deep).is_err());
        let ok = "[".repeat(MAX_DEPTH - 1) + &"]".repeat(MAX_DEPTH - 1);
        assert!(TapeDoc::build(&ok).is_ok());
    }

    #[test]
    fn duplicate_keys_are_first_wins() {
        assert_eq!(tape_get(r#"{"k":1,"k":2}"#, "$.k").unwrap(), "1");
        assert_eq!(
            tape_get(r#"{"a":{"k":"x","k":"y"},"k":9}"#, "$.a.k").unwrap(),
            "x"
        );
    }

    #[test]
    fn skip_markers_jump_unqueried_subtrees() {
        let json = r#"{"big":{"x":[1,2,3],"y":{"z":1}},"tail":5}"#;
        let mut stats = TapeStats::default();
        let p = JsonPath::parse("$.tail").unwrap();
        assert_eq!(project_path(json, &p, &mut stats).unwrap().as_ref(), "5");
        // The whole "big" subtree (object + x-key/array/3 numbers +
        // y-key/object/z-key/number) is jumped over, never visited.
        assert!(stats.nodes_skipped >= 8, "got {}", stats.nodes_skipped);

        // Probing the first field skips the tail instead.
        let mut stats2 = TapeStats::default();
        let p2 = JsonPath::parse("$.big.x[0]").unwrap();
        assert_eq!(project_path(json, &p2, &mut stats2).unwrap().as_ref(), "1");
        assert!(stats2.nodes_skipped > 0);
    }

    #[test]
    fn eval_paths_matches_per_path_eval() {
        let paths: Vec<JsonPath> = ["$.a", "$.o.x", "$.arr[1]", "$.zzz"]
            .iter()
            .map(|p| JsonPath::parse(p).unwrap())
            .collect();
        for record in [
            r#"{"a": "x", "o": {"x": 7}, "arr": [10, 20]}"#,
            r#"{"a": null}"#,
            "{broken",
            "",
        ] {
            let mut stats = TapeStats::default();
            let shared = project_paths(record, &paths, &mut stats);
            let naive: Vec<Option<Arc<str>>> = paths
                .iter()
                .map(|p| project_path(record, p, &mut TapeStats::default()))
                .collect();
            assert_eq!(shared, naive, "record {record:?}");
        }
    }

    #[test]
    fn tape_layout_invariants_hold() {
        let json = r#"{"a":[1,{"b":2}],"c":{},"d":"s"}"#;
        let tape = TapeDoc::build(json).unwrap();
        let nodes = tape.nodes();
        assert_eq!(nodes[0].kind, NodeKind::Object);
        assert_eq!(nodes[0].skip as usize, nodes.len());
        for (i, n) in nodes.iter().enumerate() {
            assert!(n.skip as usize > i, "skip must advance at entry {i}");
            assert!(n.skip as usize <= nodes.len());
            assert!(n.end > n.start, "non-empty span at entry {i}");
        }
    }

    #[test]
    fn escaped_keys_compare_unescaped() {
        let json = r#"{"we\"ird": 7, "tape": 8}"#;
        assert_eq!(tape_get(json, "$.we\"ird").unwrap(), "7");
        assert_eq!(tape_get(json, "$.tape").unwrap(), "8");
    }
}
