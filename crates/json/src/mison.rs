//! A structural-index JSON field projector in the style of Mison
//! (Li et al., VLDB 2017).
//!
//! Mison avoids building a DOM. It scans the raw bytes once to build
//! *structural bitmaps* — one bit per input byte marking quotes, colons,
//! braces and brackets — through the dispatched [`crate::kernels`] tier
//! (AVX2/SSE2 intrinsics, portable SWAR, or the scalar reference, selected
//! at runtime), then derives a *leveled colon index*: for every
//! structural colon, its byte position and nesting depth, plus a matching
//! table from every open bracket to its close. Locating a field is then a
//! scan over the colons of one level only; the value text is sliced out of
//! the record without parsing unrelated fields.
//!
//! The behaviour class this reproduces (needed by the paper's Fig. 15):
//!
//! * projecting a handful of fields is much faster than a full DOM parse
//!   (no per-field `String`/`Vec` materialization),
//! * the per-record index construction cost remains, so caching parsed
//!   values (Maxson) still wins when the same path is parsed repeatedly.

use crate::kernels;
use crate::parser::Parser;
use crate::path::{JsonPath, Step};
use crate::value::JsonValue;

/// Structural index over one record: string-interior bitmap, leveled colon
/// positions, and bracket matching.
#[derive(Debug)]
pub struct StructuralIndex<'a> {
    input: &'a [u8],
    /// Bit set for bytes inside string literals (between unescaped quotes).
    in_string: Vec<u64>,
    /// `(byte position, depth)` of every structural colon, in byte order.
    /// Depth 1 = directly inside the root object.
    colons: Vec<(u32, u32)>,
    /// `(open position, close position)` for every structural bracket pair,
    /// sorted by open position.
    pairs: Vec<(u32, u32)>,
    /// Depth just *inside* each open bracket, parallel to `pairs`.
    inner_depth: Vec<u32>,
}

#[inline]
fn get_bit(words: &[u64], i: usize) -> bool {
    words[i / 64] >> (i % 64) & 1 == 1
}

impl<'a> StructuralIndex<'a> {
    /// Build the structural index for one JSON record in two passes: the
    /// dispatched kernel builds the string-interior and structural bitmaps
    /// (pass 1), then a word-at-a-time walk over the set structural bits
    /// derives leveled colons and bracket matching (pass 2).
    pub fn build(input: &'a str) -> Self {
        Self::from_bitmaps(input, kernels::build_bitmaps(input.as_bytes()))
    }

    /// [`Self::build`] with an explicitly pinned kernel tier — the
    /// differential suites prove every tier yields identical indexes.
    pub fn build_with(kernel: kernels::Kernel, input: &'a str) -> Self {
        Self::from_bitmaps(input, kernels::build_bitmaps_with(kernel, input.as_bytes()))
    }

    fn from_bitmaps(input: &'a str, bitmaps: kernels::Bitmaps) -> Self {
        let bytes = input.as_bytes();
        let kernels::Bitmaps {
            in_string,
            structural,
        } = bitmaps;

        // Pass 2: leveled colons and bracket matching. The kernel already
        // masked string interiors out of `structural`, so this visits only
        // the (sparse) structural bytes via a trailing-zeros walk instead
        // of probing the bitmap per byte.
        let mut colons = Vec::new();
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let mut inner_depth: Vec<u32> = Vec::new();
        let mut stack: Vec<usize> = Vec::new(); // indexes into `pairs`
        let mut depth = 0u32;
        for (w, &word) in structural.iter().enumerate() {
            let mut m = word;
            while m != 0 {
                let i = (w << 6) + m.trailing_zeros() as usize;
                m &= m - 1;
                match bytes[i] {
                    b'{' | b'[' => {
                        depth += 1;
                        stack.push(pairs.len());
                        pairs.push((i as u32, u32::MAX));
                        inner_depth.push(depth);
                    }
                    b'}' | b']' => {
                        depth = depth.saturating_sub(1);
                        if let Some(idx) = stack.pop() {
                            pairs[idx].1 = i as u32;
                        }
                    }
                    // Only `:` remains; the kernel marks exactly these five.
                    _ => colons.push((i as u32, depth)),
                }
            }
        }
        StructuralIndex {
            input: bytes,
            in_string,
            colons,
            pairs,
            inner_depth,
        }
    }

    /// `true` when byte `i` lies strictly inside a string literal.
    pub fn is_in_string(&self, i: usize) -> bool {
        get_bit(&self.in_string, i)
    }

    /// Index into `pairs` of the bracket opening at `pos`, if any.
    fn pair_at(&self, pos: usize) -> Option<usize> {
        self.pairs
            .binary_search_by_key(&(pos as u32), |&(open, _)| open)
            .ok()
    }

    /// Byte offset of the close bracket matching the open bracket at `open`.
    pub fn matching_close(&self, open: usize) -> Option<usize> {
        let idx = self.pair_at(open)?;
        let close = self.pairs[idx].1;
        (close != u32::MAX).then_some(close as usize)
    }

    /// Locate the value span of an object field named `key` inside the
    /// object starting at byte `obj_start` (which must be `{`).
    ///
    /// Returns `(value_start, value_end)` byte offsets (end exclusive), or
    /// `None` when the field is absent.
    pub fn find_field(&self, obj_start: usize, key: &str) -> Option<(usize, usize)> {
        if self.input.get(obj_start) != Some(&b'{') {
            return None;
        }
        let pair_idx = self.pair_at(obj_start)?;
        let obj_end = self.pairs[pair_idx].1;
        if obj_end == u32::MAX {
            return None;
        }
        let level = self.inner_depth[pair_idx];
        // Colons are sorted by position: binary search the window.
        let lo = self.colons.partition_point(|&(p, _)| p <= obj_start as u32);
        let hi = self.colons.partition_point(|&(p, _)| p < obj_end);
        for &(colon, d) in &self.colons[lo..hi] {
            if d != level {
                continue;
            }
            let colon = colon as usize;
            let kspan = self.key_span_before(colon)?;
            if &self.input[kspan.0..kspan.1] == key.as_bytes() {
                let vstart = self.skip_ws_after(colon + 1);
                let vend = self.value_end(vstart, obj_end as usize)?;
                return Some((vstart, vend));
            }
        }
        None
    }

    /// Span of the key string (without quotes) whose closing quote precedes
    /// `colon`.
    fn key_span_before(&self, colon: usize) -> Option<(usize, usize)> {
        let mut i = colon;
        while i > 0 {
            i -= 1;
            match self.input[i] {
                b' ' | b'\t' | b'\n' | b'\r' => continue,
                b'"' => {
                    let end = i;
                    // Walk back to the opening quote: the first quote byte
                    // not marked string-interior.
                    let mut j = i;
                    while j > 0 {
                        j -= 1;
                        if self.input[j] == b'"' && !self.is_in_string(j) {
                            return Some((j + 1, end));
                        }
                    }
                    return None;
                }
                _ => return None,
            }
        }
        None
    }

    fn skip_ws_after(&self, mut i: usize) -> usize {
        while i < self.input.len() && matches!(self.input[i], b' ' | b'\t' | b'\n' | b'\r') {
            i += 1;
        }
        i
    }

    /// End (exclusive) of the value starting at `vstart`, bounded by
    /// `limit` (the enclosing object's close bracket).
    fn value_end(&self, vstart: usize, limit: usize) -> Option<usize> {
        match *self.input.get(vstart)? {
            b'{' | b'[' => self.matching_close(vstart).map(|c| c + 1),
            b'"' => {
                // The closing quote is the first quote byte after vstart
                // that is not string-interior.
                let mut i = vstart + 1;
                while i < self.input.len() {
                    if self.input[i] == b'"' && !self.is_in_string(i) {
                        return Some(i + 1);
                    }
                    i += 1;
                }
                None
            }
            _ => {
                // Scalar: runs until a raw comma/close outside strings.
                let mut i = vstart;
                while i < limit {
                    let b = self.input[i];
                    if (b == b',' || b == b'}' || b == b']') && !self.is_in_string(i) {
                        break;
                    }
                    i += 1;
                }
                let mut end = i;
                while end > vstart && matches!(self.input[end - 1], b' ' | b'\t' | b'\n' | b'\r') {
                    end -= 1;
                }
                Some(end)
            }
        }
    }
}

/// A Mison-style projector: given a set of JSONPaths, extracts their values
/// from raw records without a full DOM parse.
///
/// Paths with nested object steps are resolved by descending through the
/// same index. Wildcards and array indexes fall back to parsing just the
/// sliced subtree with the DOM parser (still far less text than the full
/// record).
#[derive(Debug)]
pub struct MisonProjector {
    paths: Vec<JsonPath>,
}

impl MisonProjector {
    /// Compile a projector for `paths`.
    pub fn new(paths: Vec<JsonPath>) -> Self {
        MisonProjector { paths }
    }

    /// The compiled paths, in projection order.
    pub fn paths(&self) -> &[JsonPath] {
        &self.paths
    }

    /// Project all compiled paths out of `record`. Entry `i` is the Hive
    /// string rendering of path `i`, or `None` on a miss.
    pub fn project(&self, record: &str) -> Vec<Option<String>> {
        let index = StructuralIndex::build(record);
        let root = index.skip_ws_after(0);
        self.paths
            .iter()
            .map(|p| project_one(record, &index, root, p.steps()))
            .collect()
    }

    /// Project a single path out of `record` (builds a fresh index).
    pub fn project_path(record: &str, path: &JsonPath) -> Option<String> {
        let index = StructuralIndex::build(record);
        let root = index.skip_ws_after(0);
        project_one(record, &index, root, path.steps())
    }

    /// Project many paths out of `record` over **one** structural index —
    /// the Mison-mode half of intra-query shared parsing. Entry `i` answers
    /// `paths[i]` and is byte-identical to what [`Self::project_path`] would
    /// return for the same pair: both go through the same `project_one`
    /// probe, only the index build is shared.
    pub fn project_paths(record: &str, paths: &[JsonPath]) -> Vec<Option<String>> {
        let index = StructuralIndex::build(record);
        let root = index.skip_ws_after(0);
        paths
            .iter()
            .map(|p| project_one(record, &index, root, p.steps()))
            .collect()
    }
}

fn project_one(
    record: &str,
    index: &StructuralIndex<'_>,
    obj_start: usize,
    steps: &[Step],
) -> Option<String> {
    match steps.first() {
        None => {
            let end = index.value_end(obj_start, record.len())?;
            render_slice(&record[obj_start..end])
        }
        Some(Step::Field(name)) => {
            let (vs, ve) = index.find_field(obj_start, name)?;
            let rest = &steps[1..];
            if rest.is_empty() {
                render_slice(&record[vs..ve])
            } else if record.as_bytes().get(vs) == Some(&b'{')
                && matches!(rest.first(), Some(Step::Field(_)))
            {
                // Recurse with the same index, scoped to the sub-object.
                project_one(record, index, vs, rest)
            } else {
                // Array step or non-object: parse just the slice.
                let sub = &record[vs..ve];
                let doc = crate::parse(sub).ok()?;
                let sub_path = steps_to_path(rest);
                sub_path.eval(&doc).map(|v| v.to_hive_string())
            }
        }
        Some(_) => {
            // Root-level array step: parse the slice.
            let end = index.value_end(obj_start, record.len())?;
            let doc = crate::parse(&record[obj_start..end]).ok()?;
            let sub_path = steps_to_path(steps);
            sub_path.eval(&doc).map(|v| v.to_hive_string())
        }
    }
}

pub(crate) fn steps_to_path(steps: &[Step]) -> JsonPath {
    let mut text = String::from("$");
    for s in steps {
        match s {
            Step::Field(f) => {
                text.push('.');
                text.push_str(f);
            }
            Step::Index(i) => {
                text.push_str(&format!("[{i}]"));
            }
            Step::Wildcard => text.push_str("[*]"),
        }
    }
    JsonPath::parse(&text).expect("reconstructed path is valid")
}

/// Render a raw value slice the way `get_json_object` renders values:
/// strings unescaped and unquoted, containers compactly re-serialized,
/// scalars normalized through the value model.
fn render_slice(slice: &str) -> Option<String> {
    let trimmed = slice.trim();
    match trimmed.as_bytes().first()? {
        b'"' => {
            // Fast path: no escapes -> borrow directly.
            let inner = &trimmed[1..];
            if let Some(end) = memchr_quote(inner) {
                if end + 2 == trimmed.len() && !inner[..end].contains('\\') {
                    return Some(inner[..end].to_string());
                }
            }
            let mut p = Parser::new(trimmed);
            p.parse_string().ok()
        }
        b'{' | b'[' => {
            let v: JsonValue = crate::parse(trimmed).ok()?;
            Some(crate::to_string(&v))
        }
        // Scalars are normalized through the value model so that number
        // rendering matches the DOM path exactly (e.g. `-2.5e3` -> `-2500.0`).
        _ => {
            let v: JsonValue = crate::parse(trimmed).ok()?;
            Some(v.to_hive_string())
        }
    }
}

/// Position of the first unescaped quote in `s`, treating any backslash as
/// a disqualifier (the caller falls back to the full unescape).
fn memchr_quote(s: &str) -> Option<usize> {
    s.bytes().position(|b| b == b'"')
}

#[cfg(test)]
mod tests {
    use super::*;

    const RECORD: &str = r#"{"item_id": 1, "item_name": "apple, or \"fruit\"", "nested": {"a": {"b": 9}, "arr": [1,2,3]}, "turnover": 20.5, "flag": true, "nothing": null}"#;

    fn project(path: &str) -> Option<String> {
        let p = JsonPath::parse(path).unwrap();
        MisonProjector::project_path(RECORD, &p)
    }

    #[test]
    fn top_level_scalars() {
        assert_eq!(project("$.item_id").unwrap(), "1");
        assert_eq!(project("$.turnover").unwrap(), "20.5");
        assert_eq!(project("$.flag").unwrap(), "true");
        assert_eq!(project("$.nothing").unwrap(), "null");
    }

    #[test]
    fn string_with_commas_and_escaped_quotes() {
        assert_eq!(project("$.item_name").unwrap(), "apple, or \"fruit\"");
    }

    #[test]
    fn nested_object_navigation() {
        assert_eq!(project("$.nested.a.b").unwrap(), "9");
        assert_eq!(project("$.nested.a").unwrap(), r#"{"b":9}"#);
    }

    #[test]
    fn array_access_falls_back_to_slice_parse() {
        assert_eq!(project("$.nested.arr[1]").unwrap(), "2");
        assert_eq!(project("$.nested.arr").unwrap(), "[1,2,3]");
    }

    #[test]
    fn missing_fields_are_none() {
        assert_eq!(project("$.zzz"), None);
        assert_eq!(project("$.nested.zzz"), None);
        assert_eq!(project("$.nested.arr[9]"), None);
    }

    #[test]
    fn matches_dom_oracle_on_varied_records() {
        let records = [
            r#"{"a":1}"#,
            r#"{"a":{"b":{"c":[true,false]}},"d":"x:y,{z}"}"#,
            r#"{ "s" : "he said \"hi\"" , "n" : -2.5e3 }"#,
            r#"{"empty":{},"arr":[],"deep":{"x":{"y":{"z":"w"}}}}"#,
        ];
        let paths = [
            "$.a",
            "$.a.b.c",
            "$.d",
            "$.s",
            "$.n",
            "$.empty",
            "$.arr",
            "$.deep.x.y.z",
        ];
        for rec in records {
            for path in paths {
                let p = JsonPath::parse(path).unwrap();
                let dom = crate::get_json_object(rec, &p);
                let mison = MisonProjector::project_path(rec, &p);
                assert_eq!(mison, dom, "record={rec} path={path}");
            }
        }
    }

    #[test]
    fn multi_path_projection() {
        let paths = vec![
            JsonPath::parse("$.item_id").unwrap(),
            JsonPath::parse("$.missing").unwrap(),
            JsonPath::parse("$.nested.a.b").unwrap(),
        ];
        let proj = MisonProjector::new(paths);
        let got = proj.project(RECORD);
        assert_eq!(
            got,
            vec![Some("1".to_string()), None, Some("9".to_string())]
        );
    }

    #[test]
    fn structural_index_masks_strings() {
        let idx = StructuralIndex::build(r#"{"k":"a,b:{c}"}"#);
        // The colon inside the string must not be structural.
        assert_eq!(idx.colons.len(), 1);
        assert_eq!(idx.pairs.len(), 1);
        assert_eq!(idx.pairs[0], (0, 14));
    }

    #[test]
    fn in_string_bitmap_boundaries() {
        let s = r#"{"ab":1}"#;
        let idx = StructuralIndex::build(s);
        assert!(idx.is_in_string(2)); // 'a'
        assert!(idx.is_in_string(3)); // 'b'
        assert!(!idx.is_in_string(0)); // '{'
        assert!(!idx.is_in_string(5)); // ':'
    }

    #[test]
    fn colon_depths_are_leveled() {
        let idx = StructuralIndex::build(r#"{"a":{"b":1},"c":2}"#);
        let depths: Vec<u32> = idx.colons.iter().map(|&(_, d)| d).collect();
        assert_eq!(depths, vec![1, 2, 1]);
    }

    #[test]
    fn bracket_matching() {
        let s = r#"{"a":[1,{"b":2}],"c":{}}"#;
        let idx = StructuralIndex::build(s);
        assert_eq!(idx.matching_close(0), Some(s.len() - 1));
        let arr_open = s.find('[').unwrap();
        assert_eq!(idx.matching_close(arr_open), Some(s.find(']').unwrap()));
        assert_eq!(idx.matching_close(3), None, "non-bracket position");
    }

    #[test]
    fn escaped_quote_handling_in_keys_and_values() {
        let s = r#"{"we\"ird": "va\\l", "x": 1}"#;
        let idx = StructuralIndex::build(s);
        let p = JsonPath::parse("$.x").unwrap();
        assert_eq!(project_one(s, &idx, 0, p.steps()).unwrap(), "1");
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "perf comparison only meaningful with optimizations"
    )]
    fn faster_than_dom_on_single_field_projection() {
        // Build a moderately large record (~4KB, 200 fields) and project a
        // single early field many times. The structural index must beat the
        // full DOM parse — the property Fig. 15 depends on.
        let mut record = String::from("{");
        for i in 0..200 {
            if i > 0 {
                record.push(',');
            }
            record.push_str(&format!("\"field{i}\": \"value-{i}-padding-padding\""));
        }
        record.push('}');
        let path = JsonPath::parse("$.field3").unwrap();
        let reps = 200;

        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            assert!(crate::get_json_object(&record, &path).is_some());
        }
        let dom = t0.elapsed();

        let t1 = std::time::Instant::now();
        for _ in 0..reps {
            assert!(MisonProjector::project_path(&record, &path).is_some());
        }
        let mison = t1.elapsed();
        assert!(
            mison < dom,
            "structural index ({mison:?}) should beat DOM parse ({dom:?})"
        );
    }

    /// One shared index must answer every path exactly like a fresh
    /// per-path index does, including misses, nested fields, array steps,
    /// and malformed records.
    #[test]
    fn project_paths_matches_per_path_projection() {
        let paths: Vec<JsonPath> = ["$.a", "$.o.x", "$.arr[1]", "$.zzz"]
            .iter()
            .map(|p| JsonPath::parse(p).unwrap())
            .collect();
        for record in [
            r#"{"a": "x", "o": {"x": 7}, "arr": [10, 20]}"#,
            r#"{"a": null}"#,
            "{broken",
            "",
        ] {
            let shared = MisonProjector::project_paths(record, &paths);
            let naive: Vec<Option<String>> = paths
                .iter()
                .map(|p| MisonProjector::project_path(record, p))
                .collect();
            assert_eq!(shared, naive, "record {record:?}");
        }
    }
}
