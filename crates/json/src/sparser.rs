//! A Sparser-style raw-byte prefilter (Palkar et al., VLDB 2018).
//!
//! Sparser's observation: many analytical queries are highly selective, so
//! it pays to reject records with a cheap scan over the *raw bytes* before
//! running any parser. The filter is sound but not exact: a record that
//! passes may still fail the real predicate (the engine re-checks), but a
//! record that is rejected can never match.
//!
//! We implement the conjunctive substring form: each needle is a byte
//! string that must appear somewhere in the record for the predicate to
//! possibly hold. Needles are derived from equality predicates on
//! JSON-extracted values — `get_json_object(col, '$.name') = 'banana'`
//! requires the bytes `banana` to appear in the raw JSON.

/// A conjunction of substring needles over raw records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFilter {
    needles: Vec<String>,
}

impl RawFilter {
    /// Build from needles; empty needles are dropped (they always match).
    pub fn new(needles: impl IntoIterator<Item = String>) -> Self {
        RawFilter {
            needles: needles.into_iter().filter(|n| !n.is_empty()).collect(),
        }
    }

    /// Needle for an equality comparison against a string value. The raw
    /// JSON contains the value text verbatim unless it needs escaping, so
    /// values containing characters that JSON escapes (quotes, backslashes,
    /// control characters) are not safe needles and yield `None`.
    pub fn equality_needle(value: &str) -> Option<String> {
        if value.is_empty()
            || value
                .chars()
                .any(|c| c == '"' || c == '\\' || (c as u32) < 0x20)
        {
            None
        } else {
            Some(value.to_string())
        }
    }

    /// The compiled needles.
    pub fn needles(&self) -> &[String] {
        &self.needles
    }

    /// `true` when no needle constrains anything.
    pub fn is_empty(&self) -> bool {
        self.needles.is_empty()
    }

    /// `true` if the record *may* satisfy the predicate (every needle is
    /// present). Never returns `false` for a record the predicate accepts.
    /// The substring scan runs on the dispatched [`crate::kernels`] tier.
    pub fn maybe_matches(&self, record: &str) -> bool {
        self.needles
            .iter()
            .all(|n| crate::kernels::contains(record.as_bytes(), n.as_bytes()))
    }

    /// Filter statistics helper: how many of `records` pass.
    pub fn pass_count<'a>(&self, records: impl IntoIterator<Item = &'a str>) -> usize {
        records
            .into_iter()
            .filter(|r| self.maybe_matches(r))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn needles_must_all_match() {
        let f = RawFilter::new(vec!["banana".to_string(), "fruit".to_string()]);
        assert!(f.maybe_matches(r#"{"name":"banana","kind":"fruit"}"#));
        assert!(!f.maybe_matches(r#"{"name":"banana"}"#));
        assert!(!f.maybe_matches(r#"{"kind":"fruit"}"#));
    }

    #[test]
    fn empty_filter_passes_everything() {
        let f = RawFilter::new(vec![]);
        assert!(f.is_empty());
        assert!(f.maybe_matches("anything"));
        let f = RawFilter::new(vec![String::new()]);
        assert!(f.is_empty());
    }

    #[test]
    fn equality_needles_reject_escapable_values() {
        assert_eq!(
            RawFilter::equality_needle("banana"),
            Some("banana".to_string())
        );
        assert_eq!(RawFilter::equality_needle(""), None);
        assert_eq!(RawFilter::equality_needle("a\"b"), None);
        assert_eq!(RawFilter::equality_needle("a\\b"), None);
        assert_eq!(RawFilter::equality_needle("a\nb"), None);
        // Unicode without escapes is fine (serialized verbatim).
        assert_eq!(
            RawFilter::equality_needle("héllo"),
            Some("héllo".to_string())
        );
    }

    #[test]
    fn soundness_on_real_documents() {
        // Any record whose parsed value equals the literal must pass.
        let records = [
            r#"{"name": "banana", "n": 1}"#,
            r#"{"n": 2, "name": "banana"}"#,
            r#"{"name": "apple"}"#,
            r#"{"other": "ba", "name": "nana"}"#,
        ];
        let path = crate::JsonPath::parse("$.name").unwrap();
        let f = RawFilter::new(vec![RawFilter::equality_needle("banana").unwrap()]);
        for rec in records {
            let matches = crate::get_json_object(rec, &path).as_deref() == Some("banana");
            if matches {
                assert!(f.maybe_matches(rec), "sound filter must pass {rec}");
            }
        }
        // And it actually prunes the obvious non-matches.
        assert!(!f.maybe_matches(records[2]));
    }

    #[test]
    fn pass_count_counts() {
        let f = RawFilter::new(vec!["x".to_string()]);
        let records = ["ax", "b", "xx"];
        assert_eq!(f.pass_count(records.iter().copied()), 2);
    }
}
