//! The portable reference tier: the original byte-at-a-time state machine
//! from `StructuralIndex::build` pass 1, fused with structural-byte
//! collection. Every other tier must reproduce its output bit for bit.

/// Fill `in_string` / `structural` (pre-zeroed, `bytes.len().div_ceil(64)`
/// words each) by walking the input one byte at a time.
pub(super) fn build_bitmaps(bytes: &[u8], in_string: &mut [u64], structural: &mut [u64]) {
    let mut inside = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        if inside {
            // The byte is interior unless it is the closing quote.
            if b == b'"' && !escaped {
                inside = false;
            } else {
                in_string[i / 64] |= 1u64 << (i % 64);
            }
            escaped = b == b'\\' && !escaped;
        } else if b == b'"' {
            inside = true;
            escaped = false;
        } else if matches!(b, b'{' | b'}' | b'[' | b']' | b':') {
            structural[i / 64] |= 1u64 << (i % 64);
        }
    }
}

/// Substring test; callers guarantee `!needle.is_empty()` and
/// `needle.len() <= hay.len()`.
pub(super) fn contains(hay: &[u8], needle: &[u8]) -> bool {
    hay.windows(needle.len()).any(|w| w == needle)
}
