//! The SSE2 and AVX2 tiers: `std::arch` byte-equality classification
//! (`cmpeq` + `movemask`, 16 or 32 bytes per instruction) feeding the same
//! shared word resolver as the SWAR tier. Compiled only on x86-64; callers
//! verify feature presence with `is_x86_feature_detected!` before entering.

#![cfg(target_arch = "x86_64")]

use std::arch::x86_64::*;

use super::Carry;

/// The seven compared byte values, broadcast once per build.
struct Needles128 {
    bs: __m128i,
    qt: __m128i,
    ob: __m128i,
    cb: __m128i,
    os: __m128i,
    cs: __m128i,
    co: __m128i,
}

#[target_feature(enable = "sse2")]
unsafe fn needles128() -> Needles128 {
    Needles128 {
        bs: _mm_set1_epi8(b'\\' as i8),
        qt: _mm_set1_epi8(b'"' as i8),
        ob: _mm_set1_epi8(b'{' as i8),
        cb: _mm_set1_epi8(b'}' as i8),
        os: _mm_set1_epi8(b'[' as i8),
        cs: _mm_set1_epi8(b']' as i8),
        co: _mm_set1_epi8(b':' as i8),
    }
}

/// Classify one 64-byte block (4 × 16) at `ptr`.
#[target_feature(enable = "sse2")]
unsafe fn classify_sse2(ptr: *const u8, n: &Needles128) -> (u64, u64, u64) {
    let mut bs = 0u64;
    let mut qt = 0u64;
    let mut st = 0u64;
    for k in 0..4 {
        let v = _mm_loadu_si128(ptr.add(k * 16).cast());
        let m = |x: __m128i| (_mm_movemask_epi8(x) as u32 as u64) << (k * 16);
        bs |= m(_mm_cmpeq_epi8(v, n.bs));
        qt |= m(_mm_cmpeq_epi8(v, n.qt));
        let s = _mm_or_si128(
            _mm_or_si128(_mm_cmpeq_epi8(v, n.ob), _mm_cmpeq_epi8(v, n.cb)),
            _mm_or_si128(
                _mm_or_si128(_mm_cmpeq_epi8(v, n.os), _mm_cmpeq_epi8(v, n.cs)),
                _mm_cmpeq_epi8(v, n.co),
            ),
        );
        st |= m(s);
    }
    (bs, qt, st)
}

#[target_feature(enable = "sse2")]
pub(super) unsafe fn build_bitmaps_sse2(
    bytes: &[u8],
    in_string: &mut [u64],
    structural: &mut [u64],
) {
    let n = needles128();
    let mut carry = Carry::default();
    let full = bytes.len() / 64;
    for w in 0..full {
        let (bs, qt, st) = classify_sse2(bytes.as_ptr().add(w * 64), &n);
        let (ins, st_out) = super::resolve_word(bs, qt, st, &mut carry);
        in_string[w] = ins;
        structural[w] = st_out;
    }
    let rem = &bytes[full * 64..];
    if !rem.is_empty() {
        let mut buf = [0u8; 64];
        buf[..rem.len()].copy_from_slice(rem);
        let (bs, qt, st) = classify_sse2(buf.as_ptr(), &n);
        let (ins, st_out) = super::resolve_word(bs, qt, st, &mut carry);
        let mask = (1u64 << rem.len()) - 1;
        in_string[full] = ins & mask;
        structural[full] = st_out & mask;
    }
}

struct Needles256 {
    bs: __m256i,
    qt: __m256i,
    ob: __m256i,
    cb: __m256i,
    os: __m256i,
    cs: __m256i,
    co: __m256i,
}

#[target_feature(enable = "avx2")]
unsafe fn needles256() -> Needles256 {
    Needles256 {
        bs: _mm256_set1_epi8(b'\\' as i8),
        qt: _mm256_set1_epi8(b'"' as i8),
        ob: _mm256_set1_epi8(b'{' as i8),
        cb: _mm256_set1_epi8(b'}' as i8),
        os: _mm256_set1_epi8(b'[' as i8),
        cs: _mm256_set1_epi8(b']' as i8),
        co: _mm256_set1_epi8(b':' as i8),
    }
}

/// Classify one 64-byte block (2 × 32) at `ptr`.
#[target_feature(enable = "avx2")]
unsafe fn classify_avx2(ptr: *const u8, n: &Needles256) -> (u64, u64, u64) {
    let mut bs = 0u64;
    let mut qt = 0u64;
    let mut st = 0u64;
    for k in 0..2 {
        let v = _mm256_loadu_si256(ptr.add(k * 32).cast());
        // movemask returns i32 with bit 31 live: go through u32 to avoid
        // sign extension smearing the high half.
        let m = |x: __m256i| u64::from(_mm256_movemask_epi8(x) as u32) << (k * 32);
        bs |= m(_mm256_cmpeq_epi8(v, n.bs));
        qt |= m(_mm256_cmpeq_epi8(v, n.qt));
        let s = _mm256_or_si256(
            _mm256_or_si256(_mm256_cmpeq_epi8(v, n.ob), _mm256_cmpeq_epi8(v, n.cb)),
            _mm256_or_si256(
                _mm256_or_si256(_mm256_cmpeq_epi8(v, n.os), _mm256_cmpeq_epi8(v, n.cs)),
                _mm256_cmpeq_epi8(v, n.co),
            ),
        );
        st |= m(s);
    }
    (bs, qt, st)
}

#[target_feature(enable = "avx2")]
pub(super) unsafe fn build_bitmaps_avx2(
    bytes: &[u8],
    in_string: &mut [u64],
    structural: &mut [u64],
) {
    let n = needles256();
    let mut carry = Carry::default();
    let full = bytes.len() / 64;
    for w in 0..full {
        let (bs, qt, st) = classify_avx2(bytes.as_ptr().add(w * 64), &n);
        let (ins, st_out) = super::resolve_word(bs, qt, st, &mut carry);
        in_string[w] = ins;
        structural[w] = st_out;
    }
    let rem = &bytes[full * 64..];
    if !rem.is_empty() {
        let mut buf = [0u8; 64];
        buf[..rem.len()].copy_from_slice(rem);
        let (bs, qt, st) = classify_avx2(buf.as_ptr(), &n);
        let (ins, st_out) = super::resolve_word(bs, qt, st, &mut carry);
        let mask = (1u64 << rem.len()) - 1;
        in_string[full] = ins & mask;
        structural[full] = st_out & mask;
    }
}

/// Substring test, first+last-byte SIMD filter (Mula's algorithm) with a
/// full-needle verify per candidate. Callers guarantee `!needle.is_empty()`
/// and `needle.len() <= hay.len()`.
#[target_feature(enable = "sse2")]
pub(super) unsafe fn contains_sse2(hay: &[u8], needle: &[u8]) -> bool {
    let k = needle.len();
    let first = _mm_set1_epi8(needle[0] as i8);
    let last = _mm_set1_epi8(needle[k - 1] as i8);
    let last_start = hay.len() - k;
    let mut i = 0usize;
    // Both loads (starts i.., ends i+k-1..) must stay in bounds for a full
    // 16-lane window of candidate starts.
    while i + 16 + k - 1 <= hay.len() {
        let a = _mm_loadu_si128(hay.as_ptr().add(i).cast());
        let b = _mm_loadu_si128(hay.as_ptr().add(i + k - 1).cast());
        let mut m = _mm_movemask_epi8(_mm_and_si128(
            _mm_cmpeq_epi8(a, first),
            _mm_cmpeq_epi8(b, last),
        )) as u32;
        while m != 0 {
            let j = i + m.trailing_zeros() as usize;
            m &= m - 1;
            if hay[j..j + k] == *needle {
                return true;
            }
        }
        i += 16;
    }
    while i <= last_start {
        if hay[i..i + k] == *needle {
            return true;
        }
        i += 1;
    }
    false
}

/// AVX2 variant of [`contains_sse2`] (32 candidate starts per iteration).
#[target_feature(enable = "avx2")]
pub(super) unsafe fn contains_avx2(hay: &[u8], needle: &[u8]) -> bool {
    let k = needle.len();
    let first = _mm256_set1_epi8(needle[0] as i8);
    let last = _mm256_set1_epi8(needle[k - 1] as i8);
    let last_start = hay.len() - k;
    let mut i = 0usize;
    while i + 32 + k - 1 <= hay.len() {
        let a = _mm256_loadu_si256(hay.as_ptr().add(i).cast());
        let b = _mm256_loadu_si256(hay.as_ptr().add(i + k - 1).cast());
        let mut m = _mm256_movemask_epi8(_mm256_and_si256(
            _mm256_cmpeq_epi8(a, first),
            _mm256_cmpeq_epi8(b, last),
        )) as u32;
        while m != 0 {
            let j = i + m.trailing_zeros() as usize;
            m &= m - 1;
            if hay[j..j + k] == *needle {
                return true;
            }
        }
        i += 32;
    }
    while i <= last_start {
        if hay[i..i + k] == *needle {
            return true;
        }
        i += 1;
    }
    false
}
