//! Vectorized structural kernels with runtime CPU dispatch.
//!
//! Everything that scans raw JSON bytes on the hot path funnels through
//! this module: structural-bitmap construction for the Mison index (and
//! therefore the tape parser and cache population, which build on it) and
//! substring search for the Sparser prefilter. Four tiers implement the
//! same two primitives:
//!
//! * `scalar` — the original byte-at-a-time state machine; the portable
//!   reference whose semantics every other tier must reproduce bit for bit.
//! * `swar` — 64-bit SWAR: byte classification via the packed zero-byte
//!   trick, carry-propagated odd-backslash-run escape detection and a
//!   prefix-XOR string mask (à la simdjson, "Parsing Gigabytes of JSON per
//!   Second"), one 64-byte block per iteration.
//! * `sse2` / `avx2` — `std::arch` intrinsics (`_mm_cmpeq_epi8` /
//!   `_mm256_cmpeq_epi8` + movemask) doing the classification 16/32 bytes
//!   at a time, feeding the same word-level resolver as the SWAR tier.
//!
//! The active tier is selected once per process: `MAXSON_SIMD=
//! {auto,avx2,sse2,swar,scalar}` clamped to what `is_x86_feature_detected!`
//! reports, defaulting to the best available. Per-tier `_with` entry points
//! exist so differential tests can pin a tier explicitly.
//!
//! # Bit-identity across tiers
//!
//! The SWAR/SIMD tiers classify bytes into per-word backslash / quote /
//! structural masks and hand them to one shared word-sequential resolver
//! ([`resolve_word`]), so the only per-tier code is trivially verifiable
//! byte classification — the string-mask derivation is common by
//! construction. The resolver reproduces the scalar state machine exactly,
//! including on malformed input: globally "escaped" quotes *outside* a
//! string (e.g. `\"a"` at top level — impossible in well-formed JSON
//! because backslash runs cannot cross a string boundary) are promoted to
//! string-openers by a lowest-bit-first fix-up loop that runs zero
//! iterations on well-formed documents. See DESIGN.md §12 for the
//! equivalence argument.

use std::cell::Cell;
use std::sync::atomic::{AtomicU8, Ordering};

mod scalar;
mod swar;
#[cfg(target_arch = "x86_64")]
mod x86;

/// One structural-kernel tier. Ordered weakest to strongest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Kernel {
    /// Byte-at-a-time reference state machine.
    Scalar = 1,
    /// 64-bit SWAR block kernel (portable).
    Swar = 2,
    /// SSE2 intrinsics (x86-64 baseline).
    Sse2 = 3,
    /// AVX2 intrinsics (runtime-detected).
    Avx2 = 4,
}

impl Kernel {
    /// Stable lowercase name, matching the `MAXSON_SIMD` values.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Swar => "swar",
            Kernel::Sse2 => "sse2",
            Kernel::Avx2 => "avx2",
        }
    }

    /// Inverse of [`Kernel::name`].
    pub fn from_name(name: &str) -> Option<Kernel> {
        match name {
            "scalar" => Some(Kernel::Scalar),
            "swar" => Some(Kernel::Swar),
            "sse2" => Some(Kernel::Sse2),
            "avx2" => Some(Kernel::Avx2),
            _ => None,
        }
    }

    /// Numeric id for metrics plumbing (0 is reserved for "unset").
    pub fn id(self) -> u8 {
        self as u8
    }

    /// Inverse of [`Kernel::id`].
    pub fn from_id(id: u8) -> Option<Kernel> {
        match id {
            1 => Some(Kernel::Scalar),
            2 => Some(Kernel::Swar),
            3 => Some(Kernel::Sse2),
            4 => Some(Kernel::Avx2),
            _ => None,
        }
    }

    /// Can this tier run on the current CPU?
    pub fn is_available(self) -> bool {
        match self {
            Kernel::Scalar | Kernel::Swar => true,
            #[cfg(target_arch = "x86_64")]
            Kernel::Sse2 => std::arch::is_x86_feature_detected!("sse2"),
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }
}

/// Every tier the current CPU can run, weakest first.
pub fn available() -> Vec<Kernel> {
    [Kernel::Scalar, Kernel::Swar, Kernel::Sse2, Kernel::Avx2]
        .into_iter()
        .filter(|k| k.is_available())
        .collect()
}

/// The strongest tier the current CPU can run.
pub fn best_available() -> Kernel {
    *available().last().expect("scalar is always available")
}

/// Process-wide active kernel id; 0 = not yet resolved from the env.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// Resolve `MAXSON_SIMD` to a tier: a known, available tier name wins;
/// `auto`, unset, unknown, or unavailable-on-this-CPU all mean "best
/// available".
pub fn kernel_from_env() -> Kernel {
    match std::env::var("MAXSON_SIMD") {
        Ok(v) => match Kernel::from_name(v.trim().to_ascii_lowercase().as_str()) {
            Some(k) if k.is_available() => k,
            _ => best_available(),
        },
        Err(_) => best_available(),
    }
}

/// The process-wide active kernel, resolving `MAXSON_SIMD` on first use.
pub fn active() -> Kernel {
    match Kernel::from_id(ACTIVE.load(Ordering::Relaxed)) {
        Some(k) => k,
        None => {
            let k = kernel_from_env();
            ACTIVE.store(k.id(), Ordering::Relaxed);
            k
        }
    }
}

/// Install `kernel` as the process-wide active tier (clamped to what the
/// CPU supports); returns what was actually installed. Parsing happens in
/// shared code paths below any one session, so this is process-wide state —
/// `Session::set_simd` documents the same caveat.
pub fn set_active(kernel: Kernel) -> Kernel {
    let k = if kernel.is_available() {
        kernel
    } else {
        best_available()
    };
    ACTIVE.store(k.id(), Ordering::Relaxed);
    k
}

/// Structural bitmaps over one record: one bit per input byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmaps {
    /// Bytes strictly inside string literals (between unescaped quotes;
    /// escaped quotes are interior, the delimiting quotes are not).
    pub in_string: Vec<u64>,
    /// Structural `{` `}` `[` `]` `:` bytes outside strings.
    pub structural: Vec<u64>,
}

/// Monotonic per-thread bitmap-build counters; snapshot-and-subtract to
/// charge a region (see `delta_since`). `nanos` is wall time inside
/// [`build_bitmaps_with`] only — classification + resolve, not the colon /
/// bracket walk layered on top.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuildStats {
    /// Bitmap constructions (one per record indexed).
    pub builds: u64,
    /// Input bytes classified.
    pub bytes: u64,
    /// Wall nanoseconds spent building.
    pub nanos: u64,
}

impl BuildStats {
    /// Counter deltas accumulated since the `earlier` snapshot.
    pub fn delta_since(self, earlier: BuildStats) -> BuildStats {
        BuildStats {
            builds: self.builds - earlier.builds,
            bytes: self.bytes - earlier.bytes,
            nanos: self.nanos - earlier.nanos,
        }
    }
}

thread_local! {
    static BUILD_STATS: Cell<BuildStats> = const {
        Cell::new(BuildStats { builds: 0, bytes: 0, nanos: 0 })
    };
}

/// Snapshot this thread's monotonic build counters.
pub fn thread_build_stats() -> BuildStats {
    BUILD_STATS.with(Cell::get)
}

/// Build structural bitmaps with the process-wide active kernel.
pub fn build_bitmaps(bytes: &[u8]) -> Bitmaps {
    build_bitmaps_with(active(), bytes)
}

/// Build structural bitmaps with an explicit tier (clamped to what the CPU
/// supports). All tiers produce bit-identical output for any byte string.
pub fn build_bitmaps_with(kernel: Kernel, bytes: &[u8]) -> Bitmaps {
    let kernel = if kernel.is_available() {
        kernel
    } else {
        best_available()
    };
    let t0 = std::time::Instant::now();
    let words = bytes.len().div_ceil(64);
    let mut in_string = vec![0u64; words];
    let mut structural = vec![0u64; words];
    match kernel {
        Kernel::Scalar => scalar::build_bitmaps(bytes, &mut in_string, &mut structural),
        Kernel::Swar => swar::build_bitmaps(bytes, &mut in_string, &mut structural),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `is_available` above verified the feature via
        // `is_x86_feature_detected!` (unavailable tiers were clamped away).
        Kernel::Sse2 => unsafe { x86::build_bitmaps_sse2(bytes, &mut in_string, &mut structural) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above — AVX2 presence runtime-verified.
        Kernel::Avx2 => unsafe { x86::build_bitmaps_avx2(bytes, &mut in_string, &mut structural) },
        #[cfg(not(target_arch = "x86_64"))]
        Kernel::Sse2 | Kernel::Avx2 => unreachable!("clamped to available tiers"),
    }
    BUILD_STATS.with(|c| {
        let mut s = c.get();
        s.builds += 1;
        s.bytes += bytes.len() as u64;
        s.nanos += t0.elapsed().as_nanos() as u64;
        c.set(s);
    });
    Bitmaps {
        in_string,
        structural,
    }
}

/// Substring test with the process-wide active kernel. Exactly
/// `hay.contains(needle)` on bytes — the Sparser prefilter sits on this.
pub fn contains(hay: &[u8], needle: &[u8]) -> bool {
    contains_with(active(), hay, needle)
}

/// Substring test with an explicit tier (clamped to what the CPU supports).
pub fn contains_with(kernel: Kernel, hay: &[u8], needle: &[u8]) -> bool {
    if needle.is_empty() {
        return true;
    }
    if needle.len() > hay.len() {
        return false;
    }
    let kernel = if kernel.is_available() {
        kernel
    } else {
        best_available()
    };
    match kernel {
        Kernel::Scalar => scalar::contains(hay, needle),
        Kernel::Swar => swar::contains(hay, needle),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: feature presence runtime-verified via `is_available`.
        Kernel::Sse2 => unsafe { x86::contains_sse2(hay, needle) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        Kernel::Avx2 => unsafe { x86::contains_avx2(hay, needle) },
        #[cfg(not(target_arch = "x86_64"))]
        Kernel::Sse2 | Kernel::Avx2 => unreachable!("clamped to available tiers"),
    }
}

const EVEN_BITS: u64 = 0x5555_5555_5555_5555;
const ODD_BITS: u64 = !EVEN_BITS;

/// Carry state threaded across 64-byte blocks by [`resolve_word`].
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct Carry {
    /// 1 when the previous block ended in an odd-length backslash run.
    ends_odd_backslash: u64,
    /// 1 when the scalar state machine is inside a string entering the
    /// next block.
    inside: u64,
}

/// Prefix XOR: bit `i` of the result is the parity of bits `0..=i` of `x`.
/// The shift-XOR cascade is the carry-less-multiply-free form of
/// simdjson's quote-mask spread.
#[inline]
fn prefix_xor(x: u64) -> u64 {
    let mut x = x;
    x ^= x << 1;
    x ^= x << 2;
    x ^= x << 4;
    x ^= x << 8;
    x ^= x << 16;
    x ^= x << 32;
    x
}

/// Resolve one 64-byte block of classification masks (`bs` backslashes,
/// `quote` quotes, `structural` raw `{}[]:` positions) into the
/// string-interior mask and the masked structural bits, reproducing the
/// scalar state machine exactly. Shared by every non-scalar tier.
#[inline]
pub(crate) fn resolve_word(bs: u64, quote: u64, structural: u64, carry: &mut Carry) -> (u64, u64) {
    // Escaped positions: characters preceded by an odd-length backslash
    // run, run parity carried across blocks (simdjson Fig. 3, "odd ends").
    let escaped = {
        let start_edges = bs & !(bs << 1);
        let even_start_mask = EVEN_BITS ^ carry.ends_odd_backslash;
        let even_starts = start_edges & even_start_mask;
        let odd_starts = start_edges & !even_start_mask;
        let even_carries = bs.wrapping_add(even_starts);
        let (odd_carries, ends_odd) = bs.overflowing_add(odd_starts);
        let odd_carries = odd_carries | carry.ends_odd_backslash;
        carry.ends_odd_backslash = ends_odd as u64;
        let even_carry_ends = even_carries & !bs;
        let odd_carry_ends = odd_carries & !bs;
        (even_carry_ends & ODD_BITS) | (odd_carry_ends & EVEN_BITS)
    };

    // Quotes that flip the in-string state. Every unescaped quote flips
    // (opener or closer). Escaped quotes agree with the scalar machine
    // inside strings (interior, no flip) because a backslash run can never
    // cross a string boundary; *outside* a string the scalar machine opens
    // unconditionally, so promote such quotes to flippers lowest-first.
    // Zero fix-up rounds on well-formed input, ≤ popcount(disputed) rounds
    // ever.
    let mut flips = quote & !escaped;
    let disputed = quote & escaped;
    let inside_all = 0u64.wrapping_sub(carry.inside);
    let mut interior = (prefix_xor(flips) ^ inside_all) & !flips;
    if disputed != 0 {
        loop {
            let misfits = disputed & !flips & !interior;
            if misfits == 0 {
                break;
            }
            flips |= misfits & misfits.wrapping_neg();
            interior = (prefix_xor(flips) ^ inside_all) & !flips;
        }
    }
    carry.inside ^= u64::from(flips.count_ones()) & 1;
    (interior, structural & !interior)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny deterministic PRNG (xorshift64*) for in-crate fuzzing; the
    /// cross-crate corpus fuzz lives in tests/kernel_differential.rs.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 >> 12;
            self.0 ^= self.0 << 25;
            self.0 ^= self.0 >> 27;
            self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    fn assert_all_tiers_match(bytes: &[u8]) {
        let reference = build_bitmaps_with(Kernel::Scalar, bytes);
        for k in available() {
            let got = build_bitmaps_with(k, bytes);
            assert_eq!(
                got,
                reference,
                "tier {} diverged from scalar on {:?}",
                k.name(),
                String::from_utf8_lossy(bytes)
            );
        }
    }

    #[test]
    fn tiers_match_on_wellformed_documents() {
        for doc in [
            r#"{}"#,
            r#"{"a":1}"#,
            r#"{"k":"a,b:{c}"}"#,
            r#"{"we\"ird": "va\\l", "x": [1, {"y": null}], "z": "\\\""}"#,
            r#"[",",":","{","}","[","]","\\","\""]"#,
            "",
            " ",
            r#"{"empty":"","esc":"\u0041\n\t"}"#,
        ] {
            assert_all_tiers_match(doc.as_bytes());
        }
    }

    #[test]
    fn tiers_match_on_malformed_escape_abuse() {
        // Globally-escaped quotes outside strings: the fix-up path.
        for doc in [
            r#"\"a""#,
            r#"\""#,
            r#"\\\"ab\"x""#,
            r#"}\"{::\"["#,
            r#""unterminated \"#,
            r#"\\\\\\\""#,
            "\\\"\\\"\\\"",
            r#"{"a\"#,
        ] {
            assert_all_tiers_match(doc.as_bytes());
        }
    }

    #[test]
    fn tiers_match_on_block_boundaries() {
        // Backslash runs and quotes straddling 64-byte block boundaries.
        for pad in 56..72usize {
            for run in 0..6 {
                let mut s = " ".repeat(pad);
                s.push('"');
                s.push_str(&"x".repeat(8));
                s.push_str(&"\\".repeat(run));
                s.push('"');
                s.push_str(r#" : {"tail": [1]}"#);
                assert_all_tiers_match(s.as_bytes());
            }
        }
    }

    #[test]
    fn tiers_match_on_random_bytes() {
        let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
        let alphabet: &[u8] = br#""\{}[]:,ab 01"#;
        for round in 0..400 {
            let len = (rng.next() % 200) as usize;
            let mut bytes = Vec::with_capacity(len);
            for _ in 0..len {
                // Half the rounds draw from a hostile alphabet dense in
                // quotes/backslashes, half from arbitrary bytes.
                let b = if round % 2 == 0 {
                    alphabet[(rng.next() % alphabet.len() as u64) as usize]
                } else {
                    (rng.next() % 256) as u8
                };
                bytes.push(b);
            }
            assert_all_tiers_match(&bytes);
        }
    }

    #[test]
    fn contains_matches_std_on_random_inputs() {
        let mut rng = Rng(0xDEAD_BEEF_CAFE_F00D);
        for _ in 0..300 {
            let hay_len = (rng.next() % 120) as usize;
            let hay: Vec<u8> = (0..hay_len)
                .map(|_| b'a' + (rng.next() % 4) as u8)
                .collect();
            let nee_len = (rng.next() % 6) as usize;
            let needle: Vec<u8> = (0..nee_len)
                .map(|_| b'a' + (rng.next() % 4) as u8)
                .collect();
            let expect =
                hay.windows(needle.len().max(1)).any(|w| w == &needle[..]) || needle.is_empty();
            for k in available() {
                assert_eq!(
                    contains_with(k, &hay, &needle),
                    expect,
                    "tier {} hay={:?} needle={:?}",
                    k.name(),
                    String::from_utf8_lossy(&hay),
                    String::from_utf8_lossy(&needle)
                );
            }
        }
    }

    #[test]
    fn contains_edge_cases() {
        for k in available() {
            assert!(contains_with(k, b"", b""));
            assert!(contains_with(k, b"abc", b""));
            assert!(!contains_with(k, b"", b"a"));
            assert!(contains_with(k, b"a", b"a"));
            assert!(!contains_with(k, b"a", b"ab"));
            assert!(contains_with(k, b"xxabyy", b"ab"));
            assert!(contains_with(k, b"xxxxab", b"ab"), "match at very end");
            assert!(contains_with(k, b"abxxxx", b"ab"), "match at start");
            assert!(!contains_with(k, b"aaaaab", b"ba"));
            assert!(
                contains_with(k, b"aabaabaac", b"aabaac"),
                "overlapping prefix"
            );
            let long = [
                b"pad".repeat(30).as_slice(),
                b"needle",
                b"pad".repeat(10).as_slice(),
            ]
            .concat();
            assert!(contains_with(k, &long, b"needle"));
            assert!(!contains_with(k, &long, b"needles "));
        }
    }

    #[test]
    fn env_name_round_trip() {
        for k in [Kernel::Scalar, Kernel::Swar, Kernel::Sse2, Kernel::Avx2] {
            assert_eq!(Kernel::from_name(k.name()), Some(k));
            assert_eq!(Kernel::from_id(k.id()), Some(k));
        }
        assert_eq!(Kernel::from_name("auto"), None);
        assert_eq!(Kernel::from_id(0), None);
    }

    #[test]
    fn set_active_clamps_to_available() {
        let prev = active();
        let got = set_active(Kernel::Avx2);
        assert!(got.is_available());
        assert_eq!(active(), got);
        set_active(prev);
    }

    #[test]
    fn build_stats_accumulate() {
        let before = thread_build_stats();
        build_bitmaps(br#"{"a":1}"#);
        let delta = thread_build_stats().delta_since(before);
        assert_eq!(delta.builds, 1);
        assert_eq!(delta.bytes, 7);
    }
}
