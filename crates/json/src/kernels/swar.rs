//! The 64-bit SWAR tier: classifies 64-byte blocks into bit masks with the
//! packed zero-byte trick (eight 8-byte words per block, no intrinsics),
//! then feeds the shared carry-propagated resolver. Portable to any 64-bit
//! target.

use super::Carry;

const LO: u64 = 0x0101_0101_0101_0101;
const HI: u64 = 0x8080_8080_8080_8080;

/// 8-bit mask (in the low byte) of which bytes of `w` equal `b`.
///
/// `x | ((x | HI) - LO)` has bit 7 of a byte clear iff that byte of `x` is
/// zero: pre-setting bit 7 makes every per-byte subtraction borrow-free, so
/// the test is exact for all byte values (the classic `(x - LO) & !x & HI`
/// form false-positives after a matching byte). The multiply then gathers
/// the eight bit-7s into the top byte (all partial products hit distinct
/// bit positions, so no carries).
#[inline]
fn eq_mask(w: u64, b: u8) -> u64 {
    let x = w ^ LO.wrapping_mul(u64::from(b));
    let zero = HI & !(x | (x | HI).wrapping_sub(LO));
    (zero >> 7).wrapping_mul(0x0102_0408_1020_4080) >> 56
}

/// Classify one 64-byte block into (backslash, quote, structural) masks.
#[inline]
fn classify(block: &[u8; 64]) -> (u64, u64, u64) {
    let mut bs = 0u64;
    let mut qt = 0u64;
    let mut st = 0u64;
    for k in 0..8 {
        let w = u64::from_le_bytes(block[k * 8..k * 8 + 8].try_into().unwrap());
        bs |= eq_mask(w, b'\\') << (k * 8);
        qt |= eq_mask(w, b'"') << (k * 8);
        st |= (eq_mask(w, b'{')
            | eq_mask(w, b'}')
            | eq_mask(w, b'[')
            | eq_mask(w, b']')
            | eq_mask(w, b':'))
            << (k * 8);
    }
    (bs, qt, st)
}

pub(super) fn build_bitmaps(bytes: &[u8], in_string: &mut [u64], structural: &mut [u64]) {
    let mut carry = Carry::default();
    let mut chunks = bytes.chunks_exact(64);
    let mut w = 0usize;
    for block in &mut chunks {
        let (bs, qt, st) = classify(block.try_into().unwrap());
        let (ins, st_out) = super::resolve_word(bs, qt, st, &mut carry);
        in_string[w] = ins;
        structural[w] = st_out;
        w += 1;
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        // Zero-pad the tail block: NUL matches no class, and resolver bits
        // past the input (an unterminated string) are masked off.
        let mut buf = [0u8; 64];
        buf[..rem.len()].copy_from_slice(rem);
        let (bs, qt, st) = classify(&buf);
        let (ins, st_out) = super::resolve_word(bs, qt, st, &mut carry);
        let mask = (1u64 << rem.len()) - 1;
        in_string[w] = ins & mask;
        structural[w] = st_out & mask;
    }
}

/// Substring test: SWAR scan for the first needle byte, verify candidates.
/// Callers guarantee `!needle.is_empty()` and `needle.len() <= hay.len()`.
pub(super) fn contains(hay: &[u8], needle: &[u8]) -> bool {
    let first = needle[0];
    let last_start = hay.len() - needle.len();
    let mut i = 0usize;
    while i + 8 <= hay.len() {
        let w = u64::from_le_bytes(hay[i..i + 8].try_into().unwrap());
        let mut m = eq_mask(w, first);
        while m != 0 {
            let j = i + m.trailing_zeros() as usize;
            m &= m - 1;
            if j <= last_start && hay[j..j + needle.len()] == *needle {
                return true;
            }
        }
        i += 8;
    }
    while i <= last_start {
        if hay[i] == first && hay[i..i + needle.len()] == *needle {
            return true;
        }
        i += 1;
    }
    false
}
