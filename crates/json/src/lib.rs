//! JSON substrate for the Maxson reproduction.
//!
//! This crate provides everything the rest of the workspace needs to work
//! with raw JSON text, built from scratch:
//!
//! * [`value::JsonValue`] — an owned JSON document model (the output of a
//!   full "Jackson-style" parse).
//! * [`parser`] — a recursive-descent DOM parser, standing in for Jackson,
//!   the default JSON parser of SparkSQL in the paper.
//! * [`serializer`] — compact and pretty writers for [`value::JsonValue`].
//! * [`path`] — a JSONPath dialect matching Hive/Spark's
//!   `get_json_object(column, '$.a.b[0]')`, with both a DOM evaluator and a
//!   raw-string evaluator.
//! * [`kernels`] — runtime-dispatched structural kernels (AVX2 / SSE2 /
//!   64-bit SWAR / scalar) building the quote-escape-colon-brace bitmaps
//!   and running the prefilter's substring search; every tier is proven
//!   bit-identical to the scalar reference.
//! * [`mison`] — a structural-index parser in the style of Mison (Li et al.,
//!   VLDB 2017), its bitmaps built by [`kernels`]. It extracts individual
//!   fields without materializing a DOM, which is the "fast parser"
//!   baseline of the paper's Fig. 15.
//! * [`tape`] — a two-stage tape parser in the style of On-Demand JSON
//!   (Keiser & Lemire, VLDB 2021): the Mison structural index drives a
//!   typed tape whose skip markers let path navigation hop over unqueried
//!   subtrees without materializing them.
//!
//! # Quick example
//!
//! ```
//! use maxson_json::{parse, path::JsonPath};
//!
//! let doc = parse(r#"{"item": {"name": "apple", "price": 2}}"#).unwrap();
//! let path = JsonPath::parse("$.item.name").unwrap();
//! assert_eq!(path.eval(&doc).unwrap().as_str(), Some("apple"));
//! ```

pub mod error;
pub mod kernels;
pub mod mison;
pub mod parser;
pub mod path;
pub mod serializer;
pub mod sparser;
pub mod tape;
pub mod value;
pub mod xml;

pub use error::{JsonError, Result};
pub use parser::{parse, Parser};
pub use path::JsonPath;
pub use serializer::{to_string, to_string_pretty};
pub use sparser::RawFilter;
pub use value::JsonValue;

/// Parse a document and evaluate a JSONPath against it, returning the value
/// rendered the way Hive's `get_json_object` renders it (scalars unquoted,
/// containers re-serialized), or `None` when the path does not match.
///
/// This is the "full parse" cost model: the entire document is parsed even
/// when only one field is needed — exactly the redundancy Maxson removes.
pub fn get_json_object(json: &str, path: &JsonPath) -> Option<String> {
    let doc = parse(json).ok()?;
    let v = path.eval(&doc)?;
    Some(v.to_hive_string())
}

/// Parse a document **once** and evaluate every path against the shared DOM
/// (entry `i` answers `paths[i]`). Invalid JSON yields all-`None`, matching
/// what [`get_json_object`] returns per path.
///
/// This is the intra-query shared-parse entry point: a query needing K
/// fields from one JSON column pays one parse instead of K.
pub fn get_json_objects(json: &str, paths: &[JsonPath]) -> Vec<Option<String>> {
    match parse(json) {
        Ok(doc) => path::eval_many(&doc, paths),
        Err(_) => vec![None; paths.len()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_json_object_scalar_is_unquoted() {
        let p = JsonPath::parse("$.a").unwrap();
        assert_eq!(get_json_object(r#"{"a":"x"}"#, &p).unwrap(), "x");
        let p = JsonPath::parse("$.n").unwrap();
        assert_eq!(get_json_object(r#"{"n":42}"#, &p).unwrap(), "42");
    }

    #[test]
    fn get_json_object_container_is_serialized() {
        let p = JsonPath::parse("$.a").unwrap();
        assert_eq!(get_json_object(r#"{"a":[1,2]}"#, &p).unwrap(), "[1,2]");
    }

    #[test]
    fn get_json_object_missing_path_is_none() {
        let p = JsonPath::parse("$.zzz").unwrap();
        assert_eq!(get_json_object(r#"{"a":1}"#, &p), None);
    }

    #[test]
    fn get_json_object_invalid_json_is_none() {
        let p = JsonPath::parse("$.a").unwrap();
        assert_eq!(get_json_object("{oops", &p), None);
    }

    /// The shared-parse entry point must agree per path with the per-call
    /// one, including on misses and invalid documents.
    #[test]
    fn get_json_objects_matches_per_call_results() {
        let paths: Vec<JsonPath> = ["$.a", "$.n", "$.zzz", "$.o.x"]
            .iter()
            .map(|p| JsonPath::parse(p).unwrap())
            .collect();
        for json in [
            r#"{"a":"x","n":42,"o":{"x":[1,2]}}"#,
            r#"{"a":null}"#,
            "{oops",
            "",
        ] {
            let shared = get_json_objects(json, &paths);
            let naive: Vec<Option<String>> =
                paths.iter().map(|p| get_json_object(json, p)).collect();
            assert_eq!(shared, naive, "doc {json:?}");
        }
    }
}
