//! A recursive-descent JSON DOM parser.
//!
//! This is the "Jackson" stand-in: the full document is tokenized,
//! unescaped, and materialized into a [`JsonValue`] tree. Every call to
//! `get_json_object` in the unmodified engine pays this cost once per record
//! per expression — the duplicate work Maxson's cache eliminates.

use crate::error::{JsonError, Result};
use crate::value::{JsonNumber, JsonValue};

/// Maximum nesting depth accepted by [`parse`]. Deep enough for any
/// realistic warehouse payload while keeping recursion bounded.
pub const MAX_DEPTH: usize = 128;

/// Parse a complete JSON document. Trailing whitespace is allowed; any other
/// trailing bytes are an error.
pub fn parse(input: &str) -> Result<JsonValue> {
    let mut p = Parser::new(input);
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(JsonError::TrailingData { offset: p.pos });
    }
    Ok(v)
}

/// Streaming-ish cursor over the input bytes. Exposed so callers (e.g. the
/// Mison fallback path) can parse a value starting mid-buffer.
pub struct Parser<'a> {
    pub(crate) bytes: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Parser<'a> {
    /// Create a parser over `input`.
    pub fn new(input: &'a str) -> Self {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    /// Current byte offset.
    pub fn offset(&self) -> usize {
        self.pos
    }

    pub(crate) fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8, expected: &'static str) -> Result<()> {
        match self.peek() {
            Some(x) if x == b => {
                self.pos += 1;
                Ok(())
            }
            found => Err(JsonError::UnexpectedChar {
                offset: self.pos,
                found,
                expected,
            }),
        }
    }

    /// Parse one JSON value at the current position.
    pub fn parse_value(&mut self, depth: usize) -> Result<JsonValue> {
        if depth > MAX_DEPTH {
            return Err(JsonError::TooDeep { limit: MAX_DEPTH });
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_keyword("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_keyword("null", JsonValue::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            found => Err(JsonError::UnexpectedChar {
                offset: self.pos,
                found,
                expected: "a JSON value",
            }),
        }
    }

    fn parse_keyword(&mut self, kw: &'static str, v: JsonValue) -> Result<JsonValue> {
        let end = self.pos + kw.len();
        if self.bytes.len() >= end && &self.bytes[self.pos..end] == kw.as_bytes() {
            self.pos = end;
            Ok(v)
        } else {
            Err(JsonError::UnexpectedChar {
                offset: self.pos,
                found: self.peek(),
                expected: "a JSON keyword (true/false/null)",
            })
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<JsonValue> {
        self.expect(b'{', "'{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':', "':'")?;
            let value = self.parse_value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                found => {
                    return Err(JsonError::UnexpectedChar {
                        offset: self.pos,
                        found,
                        expected: "',' or '}'",
                    })
                }
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<JsonValue> {
        self.expect(b'[', "'['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            let value = self.parse_value(depth + 1)?;
            items.push(value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                found => {
                    return Err(JsonError::UnexpectedChar {
                        offset: self.pos,
                        found,
                        expected: "',' or ']'",
                    })
                }
            }
        }
    }

    pub(crate) fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"', "'\"'")?;
        let start = self.pos;
        // Fast path: scan for a closing quote with no escapes.
        let mut i = self.pos;
        while i < self.bytes.len() {
            let b = self.bytes[i];
            if b == b'"' {
                // Safety of from_utf8: input came from &str and contains no
                // escape, so the slice is valid UTF-8 on char boundaries.
                let s =
                    std::str::from_utf8(&self.bytes[start..i]).expect("slice of valid UTF-8 input");
                self.pos = i + 1;
                return Ok(s.to_string());
            }
            if b == b'\\' || b < 0x20 {
                break;
            }
            i += 1;
        }
        // Slow path with escape handling.
        let mut out = String::new();
        out.push_str(
            std::str::from_utf8(&self.bytes[start..i]).expect("slice of valid UTF-8 input"),
        );
        self.pos = i;
        loop {
            match self.peek() {
                None => return Err(JsonError::UnexpectedEof { context: "string" }),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or(JsonError::UnexpectedEof {
                        context: "string escape",
                    })?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: must be followed by \uXXXX low surrogate.
                                if self.peek() == Some(b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let low = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(JsonError::InvalidString {
                                            offset: self.pos,
                                            reason: "unpaired surrogate",
                                        });
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                    out.push(char::from_u32(c).ok_or(
                                        JsonError::InvalidString {
                                            offset: self.pos,
                                            reason: "invalid surrogate pair",
                                        },
                                    )?);
                                } else {
                                    return Err(JsonError::InvalidString {
                                        offset: self.pos,
                                        reason: "unpaired surrogate",
                                    });
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(JsonError::InvalidString {
                                    offset: self.pos,
                                    reason: "unpaired low surrogate",
                                });
                            } else {
                                out.push(char::from_u32(cp).ok_or(JsonError::InvalidString {
                                    offset: self.pos,
                                    reason: "invalid code point",
                                })?);
                            }
                        }
                        _ => {
                            return Err(JsonError::InvalidString {
                                offset: self.pos - 1,
                                reason: "unknown escape",
                            })
                        }
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(JsonError::InvalidString {
                        offset: self.pos,
                        reason: "raw control character",
                    })
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .expect("suffix of valid UTF-8 input");
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(JsonError::UnexpectedEof {
                context: "unicode escape",
            });
        }
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bytes[self.pos];
            let d = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a' + 10) as u32,
                b'A'..=b'F' => (b - b'A' + 10) as u32,
                _ => {
                    return Err(JsonError::InvalidString {
                        offset: self.pos,
                        reason: "bad hex digit in unicode escape",
                    })
                }
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    pub(crate) fn parse_number(&mut self) -> Result<JsonValue> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(JsonError::InvalidNumber { offset: start }),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(JsonError::InvalidNumber { offset: start });
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(JsonError::InvalidNumber { offset: start });
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number literal is ASCII");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(JsonValue::Number(JsonNumber::Int(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| JsonValue::Number(JsonNumber::Float(f)))
            .map_err(|_| JsonError::InvalidNumber { offset: start })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("42").unwrap().as_i64(), Some(42));
        assert_eq!(parse("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(parse("2.5").unwrap().as_f64(), Some(2.5));
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(parse("-1.25e-2").unwrap().as_f64(), Some(-0.0125));
        assert_eq!(parse("\"hi\"").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn nested_structures_parse() {
        let v = parse(r#" { "a" : [1, {"b": null}, "s"] , "c": {} } "#).unwrap();
        assert_eq!(v.get("a").unwrap().len(), 3);
        assert!(v
            .get("a")
            .unwrap()
            .index(1)
            .unwrap()
            .get("b")
            .unwrap()
            .is_null());
        assert_eq!(v.get("c").unwrap().len(), 0);
    }

    #[test]
    fn escapes_are_decoded() {
        let v = parse(r#""a\n\t\"\\Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\Aé"));
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn unpaired_surrogate_is_error() {
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\udc00""#).is_err());
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in [
            "",
            "{",
            "[",
            "{\"a\"}",
            "{\"a\":}",
            "[1,]",
            "{\"a\":1,}",
            "tru",
            "01",
            "1.",
            "1e",
            "\"abc",
            "{\"a\":1} x",
            "nul",
            "+1",
            "\u{1}",
        ] {
            assert!(parse(bad).is_err(), "expected error for {bad:?}");
        }
        // Raw control char inside string.
        assert!(parse("\"a\u{1}b\"").is_err());
    }

    #[test]
    fn large_integers_fall_back_to_float() {
        let v = parse("9223372036854775807").unwrap();
        assert_eq!(v.as_i64(), Some(i64::MAX));
        let v = parse("92233720368547758080").unwrap();
        assert!(matches!(v, JsonValue::Number(JsonNumber::Float(_))));
    }

    #[test]
    fn depth_limit_enforced() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert_eq!(
            parse(&deep).unwrap_err(),
            JsonError::TooDeep { limit: MAX_DEPTH }
        );
        let ok = "[".repeat(MAX_DEPTH - 1) + &"]".repeat(MAX_DEPTH - 1);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn duplicate_keys_preserved_in_order() {
        let v = parse(r#"{"k":1,"k":2}"#).unwrap();
        assert_eq!(v.as_object().unwrap().len(), 2);
        assert_eq!(v.get("k").unwrap().as_i64(), Some(1));
    }

    #[test]
    fn whitespace_everywhere() {
        let v = parse(" \t\r\n{ \"a\" : [ 1 , 2 ] }\n ").unwrap();
        assert_eq!(v.get("a").unwrap().len(), 2);
    }
}
