//! A JSONPath dialect matching Hive/Spark's `get_json_object`.
//!
//! Supported syntax (the subset used by warehouse queries in the paper):
//!
//! * `$` — the root document
//! * `.field` or `['field']` — object member access
//! * `[n]` — array index
//! * `[*]` — all array elements (returns an array)
//!
//! Paths are parsed once and reused across millions of records, so the
//! compiled representation is a flat `Vec<Step>`.

use std::fmt;

use crate::error::{JsonError, Result};
use crate::value::JsonValue;

/// One navigation step in a compiled JSONPath.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Step {
    /// `.name` — object field access.
    Field(String),
    /// `[n]` — array index.
    Index(usize),
    /// `[*]` — wildcard over array elements.
    Wildcard,
}

/// A compiled JSONPath expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JsonPath {
    steps: Vec<Step>,
    text: String,
}

impl JsonPath {
    /// Parse a JSONPath expression like `$.store.book[0].title`.
    pub fn parse(text: &str) -> Result<Self> {
        let bytes = text.as_bytes();
        if bytes.first() != Some(&b'$') {
            return Err(JsonError::InvalidPath {
                reason: format!("path must start with '$': {text}"),
            });
        }
        let mut steps = Vec::new();
        let mut i = 1usize;
        while i < bytes.len() {
            match bytes[i] {
                b'.' => {
                    i += 1;
                    let start = i;
                    while i < bytes.len() && bytes[i] != b'.' && bytes[i] != b'[' {
                        i += 1;
                    }
                    if start == i {
                        return Err(JsonError::InvalidPath {
                            reason: format!("empty field name in {text}"),
                        });
                    }
                    steps.push(Step::Field(text[start..i].to_string()));
                }
                b'[' => {
                    i += 1;
                    if i < bytes.len() && bytes[i] == b'*' {
                        i += 1;
                        if i >= bytes.len() || bytes[i] != b']' {
                            return Err(JsonError::InvalidPath {
                                reason: format!("expected ']' after '*' in {text}"),
                            });
                        }
                        i += 1;
                        steps.push(Step::Wildcard);
                    } else if i < bytes.len() && (bytes[i] == b'\'' || bytes[i] == b'"') {
                        let quote = bytes[i];
                        i += 1;
                        let start = i;
                        while i < bytes.len() && bytes[i] != quote {
                            i += 1;
                        }
                        if i >= bytes.len() {
                            return Err(JsonError::InvalidPath {
                                reason: format!("unterminated quoted field in {text}"),
                            });
                        }
                        let name = text[start..i].to_string();
                        i += 1; // closing quote
                        if i >= bytes.len() || bytes[i] != b']' {
                            return Err(JsonError::InvalidPath {
                                reason: format!("expected ']' after quoted field in {text}"),
                            });
                        }
                        i += 1;
                        steps.push(Step::Field(name));
                    } else {
                        let start = i;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                        if start == i || i >= bytes.len() || bytes[i] != b']' {
                            return Err(JsonError::InvalidPath {
                                reason: format!("bad array index in {text}"),
                            });
                        }
                        let idx: usize =
                            text[start..i].parse().map_err(|_| JsonError::InvalidPath {
                                reason: format!("array index overflow in {text}"),
                            })?;
                        i += 1;
                        steps.push(Step::Index(idx));
                    }
                }
                _ => {
                    return Err(JsonError::InvalidPath {
                        reason: format!("unexpected character at offset {i} in {text}"),
                    })
                }
            }
        }
        Ok(JsonPath {
            steps,
            text: text.to_string(),
        })
    }

    /// The original textual form.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The compiled steps.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Number of steps (path length / nesting requirement).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` for the bare `$` path.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The leading field name, if the first step is a field access. Used by
    /// the Mison projector to seed the structural-index lookup.
    pub fn first_field(&self) -> Option<&str> {
        match self.steps.first() {
            Some(Step::Field(f)) => Some(f),
            _ => None,
        }
    }

    /// Evaluate against a parsed document. Returns `None` when any step does
    /// not match (Hive semantics: missing key / out-of-range index / type
    /// mismatch all yield NULL).
    pub fn eval<'v>(&self, root: &'v JsonValue) -> Option<EvalResult<'v>> {
        let mut cur = root;
        for (si, step) in self.steps.iter().enumerate() {
            match step {
                Step::Field(name) => cur = cur.get(name)?,
                Step::Index(i) => cur = cur.index(*i)?,
                Step::Wildcard => {
                    let items = cur.as_array()?;
                    let rest = &self.steps[si + 1..];
                    let mut collected = Vec::new();
                    for item in items {
                        if let Some(v) = eval_steps(item, rest) {
                            collected.push(v.into_owned());
                        }
                    }
                    return Some(EvalResult::Owned(JsonValue::Array(collected)));
                }
            }
        }
        Some(EvalResult::Borrowed(cur))
    }

    /// Evaluate against raw JSON text via a full parse (the Jackson cost
    /// model). Returns the Hive string rendering.
    pub fn eval_str(&self, json: &str) -> Option<String> {
        crate::get_json_object(json, self)
    }
}

/// Evaluate many paths against one already-parsed document, returning the
/// Hive string rendering of each (entry `i` answers `paths[i]`; `None` on a
/// miss).
///
/// This is the Jackson-mode half of intra-query shared parsing: the caller
/// pays one DOM parse and amortizes it over every path the query needs from
/// the document. Each entry is exactly what
/// [`crate::get_json_object`] would return for the same `(json, path)`
/// pair — the per-path evaluation is the same `eval` + `to_hive_string`
/// machinery, only the parse is shared.
pub fn eval_many(root: &JsonValue, paths: &[JsonPath]) -> Vec<Option<String>> {
    paths
        .iter()
        .map(|p| p.eval(root).map(|v| v.to_hive_string()))
        .collect()
}

fn eval_steps<'v>(root: &'v JsonValue, steps: &[Step]) -> Option<EvalResult<'v>> {
    let mut cur = root;
    for (si, step) in steps.iter().enumerate() {
        match step {
            Step::Field(name) => cur = cur.get(name)?,
            Step::Index(i) => cur = cur.index(*i)?,
            Step::Wildcard => {
                let items = cur.as_array()?;
                let rest = &steps[si + 1..];
                let mut collected = Vec::new();
                for item in items {
                    if let Some(v) = eval_steps(item, rest) {
                        collected.push(v.into_owned());
                    }
                }
                return Some(EvalResult::Owned(JsonValue::Array(collected)));
            }
        }
    }
    Some(EvalResult::Borrowed(cur))
}

/// Result of a path evaluation: a borrow into the document for plain
/// navigation, or an owned array for wildcard flattening.
#[derive(Debug, PartialEq)]
pub enum EvalResult<'v> {
    /// A reference into the evaluated document.
    Borrowed(&'v JsonValue),
    /// A freshly built value (wildcard results).
    Owned(JsonValue),
}

impl<'v> EvalResult<'v> {
    /// Borrow the underlying value.
    pub fn as_value(&self) -> &JsonValue {
        match self {
            EvalResult::Borrowed(v) => v,
            EvalResult::Owned(v) => v,
        }
    }

    /// Convert into an owned [`JsonValue`].
    pub fn into_owned(self) -> JsonValue {
        match self {
            EvalResult::Borrowed(v) => v.clone(),
            EvalResult::Owned(v) => v,
        }
    }

    /// Shortcut for `as_value().as_str()`.
    pub fn as_str(&self) -> Option<&str> {
        self.as_value().as_str()
    }

    /// Shortcut for `as_value().as_i64()`.
    pub fn as_i64(&self) -> Option<i64> {
        self.as_value().as_i64()
    }

    /// Shortcut for `as_value().as_f64()`.
    pub fn as_f64(&self) -> Option<f64> {
        self.as_value().as_f64()
    }

    /// Render as Hive's `get_json_object` would.
    pub fn to_hive_string(&self) -> String {
        self.as_value().to_hive_string()
    }
}

impl fmt::Display for JsonPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn parse_simple_paths() {
        let p = JsonPath::parse("$.a.b").unwrap();
        assert_eq!(
            p.steps(),
            &[Step::Field("a".into()), Step::Field("b".into())]
        );
        assert_eq!(p.text(), "$.a.b");
        assert_eq!(p.first_field(), Some("a"));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn parse_indexed_and_quoted() {
        let p = JsonPath::parse("$.a[3]['b c'][\"d\"][*]").unwrap();
        assert_eq!(
            p.steps(),
            &[
                Step::Field("a".into()),
                Step::Index(3),
                Step::Field("b c".into()),
                Step::Field("d".into()),
                Step::Wildcard,
            ]
        );
    }

    #[test]
    fn parse_root_only() {
        let p = JsonPath::parse("$").unwrap();
        assert!(p.is_empty());
        assert_eq!(p.first_field(), None);
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "", "a.b", "$.", "$[", "$[x]", "$['a", "$['a']x", "$..a", "$[*",
        ] {
            assert!(JsonPath::parse(bad).is_err(), "expected error for {bad:?}");
        }
    }

    #[test]
    fn eval_navigates() {
        let doc = parse(r#"{"a":{"b":[10,20,{"c":"deep"}]}}"#).unwrap();
        let p = JsonPath::parse("$.a.b[2].c").unwrap();
        assert_eq!(p.eval(&doc).unwrap().as_str(), Some("deep"));
        let p = JsonPath::parse("$.a.b[1]").unwrap();
        assert_eq!(p.eval(&doc).unwrap().as_i64(), Some(20));
    }

    #[test]
    fn eval_missing_yields_none() {
        let doc = parse(r#"{"a":{"b":[1]}}"#).unwrap();
        for path in ["$.x", "$.a.x", "$.a.b[5]", "$.a.b.c", "$.a[0]"] {
            let p = JsonPath::parse(path).unwrap();
            assert!(p.eval(&doc).is_none(), "expected None for {path}");
        }
    }

    #[test]
    fn eval_root_returns_document() {
        let doc = parse(r#"{"a":1}"#).unwrap();
        let p = JsonPath::parse("$").unwrap();
        assert_eq!(p.eval(&doc).unwrap().as_value(), &doc);
    }

    #[test]
    fn wildcard_collects_matches() {
        let doc = parse(r#"{"items":[{"p":1},{"q":9},{"p":3}]}"#).unwrap();
        let p = JsonPath::parse("$.items[*].p").unwrap();
        let got = p.eval(&doc).unwrap().into_owned();
        assert_eq!(got, parse("[1,3]").unwrap());
    }

    #[test]
    fn wildcard_on_non_array_is_none() {
        let doc = parse(r#"{"items":{"p":1}}"#).unwrap();
        let p = JsonPath::parse("$.items[*]").unwrap();
        assert!(p.eval(&doc).is_none());
    }

    #[test]
    fn nested_wildcards() {
        let doc = parse(r#"{"a":[[1,2],[3]]}"#).unwrap();
        let p = JsonPath::parse("$.a[*][*]").unwrap();
        let got = p.eval(&doc).unwrap().into_owned();
        assert_eq!(got, parse("[[1,2],[3]]").unwrap());
    }

    #[test]
    fn eval_str_matches_dom_eval() {
        let json = r#"{"a":{"b":"v"},"n":5}"#;
        let p = JsonPath::parse("$.a.b").unwrap();
        assert_eq!(p.eval_str(json).unwrap(), "v");
        let p = JsonPath::parse("$.n").unwrap();
        assert_eq!(p.eval_str(json).unwrap(), "5");
        let p = JsonPath::parse("$.missing").unwrap();
        assert_eq!(p.eval_str(json), None);
    }

    #[test]
    fn display_round_trips() {
        let text = "$.a[0]['b']";
        let p = JsonPath::parse(text).unwrap();
        assert_eq!(p.to_string(), text);
    }
}
