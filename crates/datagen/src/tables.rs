//! The ten workload tables of Table II and their queries Q1..Q10.
//!
//! The paper evaluates on ten queries drawn from three representative
//! Alibaba users, over tables whose JSON payloads it characterizes only by
//! shape: number of JSONPaths in the query, number of properties in the
//! JSON, nesting level, and average JSON size in bytes. As the paper itself
//! synthesizes data "following the real data hierarchies and formats", we
//! regenerate tables from those published shape parameters.
//!
//! Every table has three columns: `id BIGINT`, `date BIGINT` (yyyymmdd),
//! and `payload STRING` holding the JSON document.

use maxson_json::{to_string, JsonValue};
use maxson_storage::file::WriteOptions;
use maxson_storage::{Catalog, Cell, ColumnType, Field, Schema};
use maxson_testkit::rng::Rng;

/// Shape parameters for one workload table (one row of Table II).
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// Table name (`q1`..`q10`).
    pub name: &'static str,
    /// Number of JSONPaths the query extracts.
    pub json_paths: usize,
    /// Total leaf properties in each JSON document.
    pub properties: usize,
    /// Nesting level of the document.
    pub nesting: usize,
    /// Target average serialized size in bytes.
    pub avg_size: usize,
    /// Fraction of records whose schema mutates (drives Mison's weakness on
    /// schema-variant data; the paper singles out Q6).
    pub schema_variance: f64,
}

/// The ten specs, straight from Table II. Schema variance is set high for
/// Q6 (the paper notes its JSON pattern "has little change", making Mison
/// shine there, while schema variation hurts Mison elsewhere) — we invert:
/// Q6 gets near-zero variance, big-document tables get moderate variance.
pub fn table_specs() -> Vec<TableSpec> {
    vec![
        TableSpec {
            name: "q1",
            json_paths: 11,
            properties: 11,
            nesting: 1,
            avg_size: 408,
            schema_variance: 0.1,
        },
        TableSpec {
            name: "q2",
            json_paths: 10,
            properties: 17,
            nesting: 1,
            avg_size: 655,
            schema_variance: 0.2,
        },
        TableSpec {
            name: "q3",
            json_paths: 10,
            properties: 206,
            nesting: 4,
            avg_size: 4830,
            schema_variance: 0.3,
        },
        TableSpec {
            name: "q4",
            json_paths: 1,
            properties: 215,
            nesting: 4,
            avg_size: 4736,
            schema_variance: 0.3,
        },
        TableSpec {
            name: "q5",
            json_paths: 12,
            properties: 26,
            nesting: 3,
            avg_size: 582,
            schema_variance: 0.1,
        },
        TableSpec {
            name: "q6",
            json_paths: 29,
            properties: 107,
            nesting: 5,
            avg_size: 2031,
            schema_variance: 0.0,
        },
        TableSpec {
            name: "q7",
            json_paths: 3,
            properties: 12,
            nesting: 2,
            avg_size: 252,
            schema_variance: 0.1,
        },
        TableSpec {
            name: "q8",
            json_paths: 5,
            properties: 17,
            nesting: 1,
            avg_size: 368,
            schema_variance: 0.1,
        },
        TableSpec {
            name: "q9",
            json_paths: 1,
            properties: 319,
            nesting: 3,
            avg_size: 21459,
            schema_variance: 0.4,
        },
        TableSpec {
            name: "q10",
            json_paths: 8,
            properties: 90,
            nesting: 1,
            avg_size: 8692,
            schema_variance: 0.2,
        },
    ]
}

/// One workload query: its SQL plus the JSONPaths it touches.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Query label (`Q1`..`Q10`).
    pub name: String,
    /// Database the table lives in.
    pub database: String,
    /// Table name.
    pub table: String,
    /// The SQL text.
    pub sql: String,
    /// JSONPaths extracted by the query (column is always `payload`).
    pub paths: Vec<String>,
}

/// Generation configuration.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Database name for all workload tables.
    pub database: String,
    /// Rows per table (the paper used 20M; scale down for a laptop run).
    pub rows_per_table: usize,
    /// Part files per table (splits).
    pub files_per_table: usize,
    /// Rows per row group inside each file.
    pub row_group_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            database: "mydb".into(),
            rows_per_table: 2_000,
            files_per_table: 2,
            row_group_size: 250,
            seed: 0xCAFE,
        }
    }
}

/// Deterministically build the property tree for a spec: `properties`
/// leaves spread across `nesting` levels. Returns the list of leaf
/// JSONPaths in schema order.
pub fn schema_paths(spec: &TableSpec) -> Vec<String> {
    let mut paths = Vec::with_capacity(spec.properties);
    // Distribute leaves over levels: level 1 gets the most, deeper levels
    // fewer, but ensure at least one leaf at the max depth.
    let levels = spec.nesting.max(1);
    let mut remaining = spec.properties;
    for level in 1..=levels {
        let take = if level == levels {
            remaining
        } else {
            // Half of what remains at each level, at least 1.
            (remaining / 2).max(1)
        };
        for k in 0..take {
            let mut p = String::from("$");
            for d in 1..level {
                p.push_str(&format!(".n{d}"));
            }
            p.push_str(&format!(".f{k}"));
            paths.push(p);
        }
        remaining -= take;
        if remaining == 0 {
            break;
        }
    }
    paths
}

/// The JSONPaths the query of `spec` extracts: the first `json_paths`
/// leaves, preferring deeper ones so the query touches the nested shape.
pub fn query_paths(spec: &TableSpec) -> Vec<String> {
    let mut all = schema_paths(spec);
    // Mix shallow and deep: take every (len/json_paths)-th leaf.
    let n = spec.json_paths.min(all.len());
    let stride = (all.len() / n).max(1);
    let mut picked: Vec<String> = all.iter().step_by(stride).take(n).cloned().collect();
    while picked.len() < n {
        picked.push(all.pop().expect("non-empty schema"));
    }
    picked
}

/// Generate one JSON document for `spec`.
fn generate_document(spec: &TableSpec, rng: &mut Rng, row: u64) -> String {
    let paths = schema_paths(spec);
    // Build nested objects level by level.
    fn insert(obj: &mut Vec<(String, JsonValue)>, steps: &[&str], value: JsonValue) {
        if steps.len() == 1 {
            obj.push((steps[0].to_string(), value));
            return;
        }
        // Find or create the nested object.
        if let Some((_, JsonValue::Object(inner))) = obj
            .iter_mut()
            .find(|(k, v)| k == steps[0] && matches!(v, JsonValue::Object(_)))
        {
            insert(inner, &steps[1..], value);
            return;
        }
        let mut inner = Vec::new();
        insert(&mut inner, &steps[1..], value);
        obj.push((steps[0].to_string(), JsonValue::Object(inner)));
    }

    let mutate = rng.gen_bool(spec.schema_variance.clamp(0.0, 1.0));
    let mut root: Vec<(String, JsonValue)> = Vec::new();
    // Estimate per-leaf budget from the target size (rough: fixed overhead
    // per field of ~12 bytes for quotes/name/colon/comma).
    let overhead = 14 * spec.properties;
    let value_budget = spec.avg_size.saturating_sub(overhead) / spec.properties.max(1);
    for (li, path) in paths.iter().enumerate() {
        // Schema variance: mutated records drop ~20% of their fields and
        // rename a few, so field positions shift (what degrades Mison's
        // speculative lookup).
        if mutate && rng.gen_bool(0.2) {
            continue;
        }
        let steps: Vec<&str> = path[2..].split('.').collect();
        let value: JsonValue = match li % 4 {
            0 => JsonValue::from((row as i64 * 31 + li as i64) % 100_000),
            1 => JsonValue::from(((row * 7 + li as u64) % 1000) as f64 / 4.0),
            _ => {
                let len = value_budget.clamp(3, 64);
                let mut s = String::with_capacity(len);
                let mut x = row.wrapping_mul(0x9E37_79B9).wrapping_add(li as u64);
                while s.len() < len {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    s.push(char::from(b'a' + (x >> 33 & 25) as u8));
                }
                JsonValue::from(s)
            }
        };
        let mut renamed_steps = steps.clone();
        let renamed;
        if mutate && rng.gen_bool(0.1) {
            renamed = format!("{}_v2", steps[steps.len() - 1]);
            *renamed_steps.last_mut().expect("non-empty") = &renamed;
        }
        insert(&mut root, &renamed_steps, value);
    }
    // Pad with a filler field to approach the target average size.
    let doc = JsonValue::Object(root);
    let mut text = to_string(&doc);
    if text.len() + 12 < spec.avg_size {
        let pad = spec.avg_size - text.len() - 12;
        let filler: String = std::iter::repeat_n('x', pad).collect();
        let JsonValue::Object(mut fields) = doc else {
            unreachable!()
        };
        fields.push(("_pad".to_string(), JsonValue::from(filler)));
        text = to_string(&JsonValue::Object(fields));
    }
    text
}

/// The standard table schema for every workload table.
pub fn workload_schema() -> Schema {
    Schema::new(vec![
        Field::new("id", ColumnType::Int64),
        Field::new("date", ColumnType::Int64),
        Field::new("payload", ColumnType::Utf8),
    ])
    .expect("static schema is valid")
}

/// Create and populate all ten workload tables in `catalog`, returning the
/// ten query specs. Tables that already exist are left untouched (so
/// benchmarks can reuse generated data).
pub fn load_workload_tables(
    catalog: &mut Catalog,
    config: &WorkloadConfig,
) -> Result<Vec<QuerySpec>, maxson_storage::StorageError> {
    let specs = table_specs();
    let mut rng = Rng::seed_from_u64(config.seed);
    for spec in &specs {
        if catalog.has_table(&config.database, spec.name) {
            continue;
        }
        let table = catalog.create_table(&config.database, spec.name, workload_schema(), 0)?;
        let rows_per_file = config.rows_per_table / config.files_per_table.max(1);
        let mut row_id = 0u64;
        for _ in 0..config.files_per_table {
            let rows: Vec<Vec<Cell>> = (0..rows_per_file)
                .map(|_| {
                    let json = generate_document(spec, &mut rng, row_id);
                    let date = 20190101 + (row_id % 31) as i64;
                    let row = vec![Cell::Int(row_id as i64), Cell::Int(date), Cell::from(json)];
                    row_id += 1;
                    row
                })
                .collect();
            table.append_file(
                &rows,
                WriteOptions {
                    row_group_size: config.row_group_size,
                    ..Default::default()
                },
                1,
            )?;
        }
    }
    Ok(build_queries(&config.database))
}

/// Build the ten query specs over already-loaded tables.
pub fn build_queries(database: &str) -> Vec<QuerySpec> {
    let specs = table_specs();
    specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let paths = query_paths(spec);
            let sql = match i {
                // Q2: COUNT + GROUP BY with a JSON predicate (Fig. 12 uses
                // its pushdown).
                1 => {
                    let group = &paths[0];
                    let pred = &paths[1];
                    format!(
                        "select get_json_object(payload, '{group}') as grp, count(*) as n \
                         from {database}.{t} \
                         where get_json_object(payload, '{pred}') > 500 \
                         group by get_json_object(payload, '{group}') \
                         order by n desc limit 20",
                        t = spec.name
                    )
                }
                // Q3: self-equijoin on a JSON field.
                2 => {
                    let key = &paths[0];
                    let pick = &paths[1];
                    format!(
                        "select a.id, get_json_object(a.payload, '{pick}') as v \
                         from {database}.{t} a join {database}.{t} b \
                         on get_json_object(a.payload, '{key}') = get_json_object(b.payload, '{key}') \
                         where a.date = 20190101 and b.date = 20190101 limit 100",
                        t = spec.name
                    )
                }
                // Q7: small GROUP BY.
                6 => {
                    let group = &paths[0];
                    let agg = &paths[1];
                    format!(
                        "select get_json_object(payload, '{group}') as grp, \
                         sum(get_json_object(payload, '{agg}')) as total, \
                         count(*) as n \
                         from {database}.{t} group by get_json_object(payload, '{group}')",
                        t = spec.name
                    )
                }
                // Q8: ORDER BY a JSON field.
                7 => {
                    let select_list = paths
                        .iter()
                        .enumerate()
                        .map(|(k, p)| format!("get_json_object(payload, '{p}') as c{k}"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!(
                        "select id, {select_list} from {database}.{t} \
                         order by get_json_object(payload, '{p0}') desc limit 50",
                        t = spec.name,
                        p0 = paths[0]
                    )
                }
                // Q9: single deep path with a selective JSON predicate
                // (the pushdown showcase of Fig. 12). The generated int
                // values are `(row*31) % 100_000`, so a 50k threshold keeps
                // a small-but-nonempty tail at any table scale.
                8 => {
                    let p = &paths[0];
                    format!(
                        "select id, get_json_object(payload, '{p}') as v \
                         from {database}.{t} \
                         where get_json_object(payload, '{p}') > 50000",
                        t = spec.name
                    )
                }
                // Default shape: project all paths over a date window
                // (the Fig. 1 recurring-query pattern).
                _ => {
                    let select_list = paths
                        .iter()
                        .enumerate()
                        .map(|(k, p)| format!("get_json_object(payload, '{p}') as c{k}"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!(
                        "select id, {select_list} from {database}.{t} \
                         where date between 20190101 and 20190115",
                        t = spec.name
                    )
                }
            };
            QuerySpec {
                name: format!("Q{}", i + 1),
                database: database.to_string(),
                table: spec.name.to_string(),
                sql,
                paths,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxson_json::parse;

    #[test]
    fn specs_match_table_ii() {
        let specs = table_specs();
        assert_eq!(specs.len(), 10);
        assert_eq!(specs[0].json_paths, 11);
        assert_eq!(specs[5].json_paths, 29);
        assert_eq!(specs[8].avg_size, 21459);
        assert_eq!(specs[5].nesting, 5);
    }

    #[test]
    fn schema_paths_counts_and_depths() {
        for spec in table_specs() {
            let paths = schema_paths(&spec);
            assert_eq!(paths.len(), spec.properties, "{}", spec.name);
            let max_depth = paths.iter().map(|p| p.matches('.').count()).max().unwrap();
            assert_eq!(max_depth, spec.nesting, "{}", spec.name);
        }
    }

    #[test]
    fn query_paths_counts() {
        for spec in table_specs() {
            let qp = query_paths(&spec);
            assert_eq!(qp.len(), spec.json_paths, "{}", spec.name);
            // Distinct paths.
            let set: std::collections::BTreeSet<_> = qp.iter().collect();
            assert_eq!(set.len(), qp.len(), "{}", spec.name);
        }
    }

    #[test]
    fn documents_are_valid_and_close_to_target_size() {
        let mut rng = Rng::seed_from_u64(1);
        for spec in table_specs() {
            let sizes: Vec<usize> = (0..30)
                .map(|i| {
                    let text = generate_document(&spec, &mut rng, i);
                    let doc = parse(&text).expect("valid JSON");
                    assert!(doc.as_object().is_some());
                    text.len()
                })
                .collect();
            let avg = sizes.iter().sum::<usize>() / sizes.len();
            // Within 2x either way of the target — shape matters, not bytes.
            assert!(
                avg * 2 >= spec.avg_size && avg <= spec.avg_size * 2,
                "{}: avg {} vs target {}",
                spec.name,
                avg,
                spec.avg_size
            );
        }
    }

    #[test]
    fn query_paths_resolve_in_generated_documents() {
        let mut rng = Rng::seed_from_u64(2);
        // Zero variance => every path must resolve.
        let mut spec = table_specs()[5].clone();
        spec.schema_variance = 0.0;
        let text = generate_document(&spec, &mut rng, 0);
        let doc = parse(&text).unwrap();
        for p in query_paths(&spec) {
            let jp = maxson_json::JsonPath::parse(&p).unwrap();
            assert!(jp.eval(&doc).is_some(), "path {p} missing in {text}");
        }
    }

    #[test]
    fn queries_have_expected_shapes() {
        let queries = build_queries("mydb");
        assert_eq!(queries.len(), 10);
        assert!(queries[1].sql.contains("group by"));
        assert!(queries[2].sql.contains("join"));
        assert!(queries[8].sql.contains("where get_json_object"));
        for q in &queries {
            assert!(q.sql.contains(&q.table));
            assert_eq!(q.database, "mydb");
        }
    }

    #[test]
    fn load_workload_tables_end_to_end_small() {
        use std::time::{SystemTime, UNIX_EPOCH};
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap()
            .subsec_nanos();
        let root =
            std::env::temp_dir().join(format!("maxson-datagen-{}-{nanos}", std::process::id()));
        let mut catalog = Catalog::open(&root).unwrap();
        let cfg = WorkloadConfig {
            rows_per_table: 40,
            files_per_table: 2,
            row_group_size: 10,
            ..Default::default()
        };
        let queries = load_workload_tables(&mut catalog, &cfg).unwrap();
        assert_eq!(queries.len(), 10);
        for spec in table_specs() {
            let t = catalog.table("mydb", spec.name).unwrap();
            assert_eq!(t.num_rows().unwrap(), 40);
            assert_eq!(t.file_count(), 2);
        }
        // Idempotent: reloading does not duplicate.
        let again = load_workload_tables(&mut catalog, &cfg).unwrap();
        assert_eq!(again.len(), 10);
        std::fs::remove_dir_all(&root).ok();
    }
}
