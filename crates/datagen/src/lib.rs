//! Data generators for the Maxson reproduction.
//!
//! Two families of synthetic data stand in for data sets we cannot ship:
//!
//! * [`nobench`] — documents in the style of the NoBench benchmark, used by
//!   the paper's Fig. 3 parse-cost study,
//! * [`tables`] — the ten workload tables of Table II, regenerated from the
//!   published shape parameters (JSONPath count, property count, nesting
//!   level, average JSON size) together with the ten queries Q1..Q10.
//!
//! All generators are deterministic given a seed, so benchmarks and tests
//! are reproducible.

pub mod nobench;
pub mod tables;

pub use nobench::NobenchGenerator;
pub use tables::{load_workload_tables, table_specs, QuerySpec, TableSpec, WorkloadConfig};
