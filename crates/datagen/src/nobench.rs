//! NoBench-style JSON document generation.
//!
//! NoBench documents mix stable scalar attributes, dynamically-typed
//! attributes, sparse attributes (present in a small fraction of records),
//! a nested array, and a nested object. This generator reproduces that
//! structural mix, which is what drives full-parse cost in the paper's
//! Fig. 3 study.

use maxson_json::{to_string, JsonValue};
use maxson_testkit::rng::Rng;

/// Deterministic NoBench-like record generator.
#[derive(Debug)]
pub struct NobenchGenerator {
    rng: Rng,
    /// How many of the 100 sparse attribute slots each record samples.
    sparse_per_record: usize,
}

impl NobenchGenerator {
    /// Create a generator with a fixed seed.
    pub fn new(seed: u64) -> Self {
        NobenchGenerator {
            rng: Rng::seed_from_u64(seed),
            sparse_per_record: 2,
        }
    }

    /// Generate record number `i` as a [`JsonValue`].
    pub fn record(&mut self, i: u64) -> JsonValue {
        let mut fields: Vec<(String, JsonValue)> = Vec::with_capacity(12);
        fields.push(("str1".into(), JsonValue::from(format!("str-{i}"))));
        fields.push(("str2".into(), JsonValue::from(format!("group-{}", i % 100))));
        fields.push(("num".into(), JsonValue::from(i as i64)));
        fields.push(("bool".into(), JsonValue::from(i.is_multiple_of(2))));
        // Dynamically typed attributes: alternate string/number.
        let dyn1: JsonValue = if i.is_multiple_of(3) {
            JsonValue::from(i as i64)
        } else {
            JsonValue::from(format!("dyn-{i}"))
        };
        fields.push(("dyn1".into(), dyn1));
        fields.push((
            "dyn2".into(),
            if i.is_multiple_of(5) {
                JsonValue::from((i as f64) / 7.0)
            } else {
                JsonValue::from(format!("{i}"))
            },
        ));
        // Nested array of strings.
        let arr_len = 2 + (i % 4) as usize;
        fields.push((
            "nested_arr".into(),
            JsonValue::Array(
                (0..arr_len)
                    .map(|k| JsonValue::from(format!("item-{i}-{k}")))
                    .collect(),
            ),
        ));
        // Nested object.
        fields.push((
            "nested_obj".into(),
            JsonValue::Object(vec![
                ("str".into(), JsonValue::from(format!("nested-{i}"))),
                ("num".into(), JsonValue::from((i * 31 % 1000) as i64)),
            ]),
        ));
        // Sparse attributes: each record carries a few of 100 possible.
        for _ in 0..self.sparse_per_record {
            let slot: u32 = self.rng.gen_range(0..100);
            fields.push((
                format!("sparse_{slot:03}"),
                JsonValue::from(format!("sparse-val-{slot}")),
            ));
        }
        JsonValue::Object(fields)
    }

    /// Generate record `i` as serialized JSON text.
    pub fn record_text(&mut self, i: u64) -> String {
        to_string(&self.record(i))
    }

    /// Generate `n` serialized records.
    pub fn records(&mut self, n: u64) -> Vec<String> {
        (0..n).map(|i| self.record_text(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxson_json::parse;

    #[test]
    fn records_are_valid_json_with_expected_fields() {
        let mut g = NobenchGenerator::new(42);
        for i in 0..50 {
            let text = g.record_text(i);
            let doc = parse(&text).unwrap();
            assert!(doc.get("str1").is_some());
            assert!(doc.get("num").unwrap().as_i64().is_some());
            assert!(doc.get("nested_obj").unwrap().get("str").is_some());
            assert!(!doc
                .get("nested_arr")
                .unwrap()
                .as_array()
                .unwrap()
                .is_empty());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = NobenchGenerator::new(7).records(20);
        let b = NobenchGenerator::new(7).records(20);
        assert_eq!(a, b);
        let c = NobenchGenerator::new(8).records(20);
        assert_ne!(a, c);
    }

    #[test]
    fn sparse_attributes_vary_across_records() {
        let mut g = NobenchGenerator::new(1);
        let docs: Vec<_> = (0..30).map(|i| g.record(i)).collect();
        let mut sparse_names = std::collections::BTreeSet::new();
        for d in &docs {
            for (k, _) in d.as_object().unwrap() {
                if k.starts_with("sparse_") {
                    sparse_names.insert(k.clone());
                }
            }
        }
        assert!(
            sparse_names.len() > 10,
            "expected varied sparse slots, got {}",
            sparse_names.len()
        );
    }

    #[test]
    fn dynamic_fields_change_type() {
        let mut g = NobenchGenerator::new(1);
        let d0 = g.record(0); // i%3==0 -> number
        let d1 = g.record(1); // -> string
        assert!(d0.get("dyn1").unwrap().as_i64().is_some());
        assert!(d1.get("dyn1").unwrap().as_str().is_some());
    }
}
