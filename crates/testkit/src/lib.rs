//! Hermetic test substrate for the Maxson workspace.
//!
//! Three pieces, zero external dependencies:
//!
//! * [`rng`] — a deterministic PRNG (SplitMix64-seeded xoshiro256++) with
//!   the `rand`-style surface the workspace uses: `seed_from_u64`,
//!   `gen_range`, `gen_bool`, `gen::<T>()`, slice `shuffle`/`choose`.
//! * [`prop`] — a property-testing harness: composable generators,
//!   configurable case counts, greedy shrinking, and failure seeds
//!   replayable via the `MAXSON_TESTKIT_SEED` environment variable.
//! * [`corpus`] — a seed-replayable adversarial JSON corpus (valid and
//!   invalid tiers plus byte-level mutation) for parser differential and
//!   failure-injection tests.
//! * [`bench`] — a wall-clock bench runner (warmup + N timed iterations,
//!   median/p95) whose stats feed the workspace's `Report` JSON format.
//! * [`alloc`] (feature `count-alloc`) — a counting global allocator for
//!   allocation-per-row regression tests on the zero-copy scan path.
//!
//! The workspace builds and tests fully offline (`cargo test -q
//! --offline`); see README.md's hermetic-build policy. Everything is
//! deterministic by construction so behavior is pinned by seeds, not by
//! whichever registry version resolution happens to pick.

#[cfg(feature = "count-alloc")]
pub mod alloc;
pub mod bench;
pub mod corpus;
pub mod prop;
pub mod rng;

pub use bench::{BenchRunner, BenchStats};
pub use prop::{check, Config, Gen};
pub use rng::{Random, Rng, SliceRandom};
