//! A minimal property-testing harness: composable generators, configurable
//! case counts, greedy shrinking, and seed-replayable failures.
//!
//! Every test case is generated from its own `u64` seed, derived
//! deterministically from a per-property base seed and the case index. When
//! a property fails, the harness greedily shrinks the failing input and
//! panics with the case seed; exporting that seed via the
//! `MAXSON_TESTKIT_SEED` environment variable makes every property in the
//! binary replay exactly that case, so the failure reproduces from a cold
//! cache with no other state.
//!
//! ```no_run
//! use maxson_testkit::prop::{check, Config, Gen};
//! use maxson_testkit::prop_assert_eq;
//!
//! let cfg = Config::with_cases(128);
//! check("addition_commutes", &cfg, &Gen::tuple2(
//!     Gen::i64_in(-100..=100), Gen::i64_in(-100..=100)),
//!     |&(a, b)| {
//!         prop_assert_eq!(a + b, b + a);
//!         Ok(())
//!     });
//! ```

use std::cell::Cell as StdCell;
use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

use crate::rng::{splitmix64, Rng};

/// Environment variable that replays a single failing case by seed.
pub const SEED_ENV: &str = "MAXSON_TESTKIT_SEED";

thread_local! {
    /// Set while the harness probes a candidate, so the panic hook stays
    /// quiet about panics the harness catches and converts into failures.
    static QUIET_PANICS: StdCell<bool> = const { StdCell::new(false) };
}

fn install_quiet_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(StdCell::get) {
                previous(info);
            }
        }));
    });
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Upper bound on accepted shrink steps (greedy descent length).
    pub max_shrink_steps: u32,
}

impl Config {
    /// Config running `cases` cases (the `ProptestConfig::with_cases`
    /// equivalent).
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            max_shrink_steps: 512,
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::with_cases(64)
    }
}

type GenFn<T> = Rc<dyn Fn(&mut Rng) -> T>;
type ShrinkFn<T> = Rc<dyn Fn(&T) -> Vec<T>>;

/// A composable value generator with an attached (possibly empty) shrinker.
///
/// Generators are cheap to clone (reference-counted closures). Shrinkers
/// return a list of strictly "smaller" candidates; the harness greedily
/// walks to the first candidate that still fails.
pub struct Gen<T> {
    generate: GenFn<T>,
    shrink: ShrinkFn<T>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen {
            generate: Rc::clone(&self.generate),
            shrink: Rc::clone(&self.shrink),
        }
    }
}

impl<T: 'static> Gen<T> {
    /// Generator from a closure, with no shrinking.
    pub fn new(f: impl Fn(&mut Rng) -> T + 'static) -> Self {
        Gen {
            generate: Rc::new(f),
            shrink: Rc::new(|_| Vec::new()),
        }
    }

    /// Generator with an explicit shrinker.
    pub fn with_shrink(
        f: impl Fn(&mut Rng) -> T + 'static,
        s: impl Fn(&T) -> Vec<T> + 'static,
    ) -> Self {
        Gen {
            generate: Rc::new(f),
            shrink: Rc::new(s),
        }
    }

    /// Draw one value.
    pub fn generate(&self, rng: &mut Rng) -> T {
        (self.generate)(rng)
    }

    /// Shrink candidates for `value` (possibly empty).
    pub fn shrink(&self, value: &T) -> Vec<T> {
        (self.shrink)(value)
    }

    /// Map the generated value. The mapping is not invertible, so shrinking
    /// is dropped; attach a new shrinker with [`Gen::with_shrink`] if the
    /// mapped domain supports one.
    pub fn map<U: 'static>(self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        Gen::new(move |rng| f(self.generate(rng)))
    }
}

impl<T: Clone + 'static> Gen<T> {
    /// Always-the-same-value generator.
    pub fn just(value: T) -> Self {
        Gen::new(move |_| value.clone())
    }

    /// Uniformly pick one of the inner generators per case (the
    /// `prop_oneof!` equivalent). Shrinking tries every variant's shrinker.
    pub fn one_of(options: Vec<Gen<T>>) -> Self {
        assert!(!options.is_empty(), "one_of: no options");
        let gens = Rc::new(options);
        let shrink_gens = Rc::clone(&gens);
        Gen::with_shrink(
            move |rng| {
                let k = rng.below(gens.len() as u64) as usize;
                gens[k].generate(rng)
            },
            move |v| shrink_gens.iter().flat_map(|g| g.shrink(v)).collect(),
        )
    }

    /// Recursive generator: start from `leaf` and apply `grow` up to
    /// `levels` times, mixing shallower cases back in at every level (the
    /// `prop_recursive` equivalent).
    pub fn recursive(leaf: Gen<T>, levels: usize, grow: impl Fn(Gen<T>) -> Gen<T>) -> Gen<T> {
        let mut g = leaf.clone();
        for _ in 0..levels {
            g = Gen::one_of(vec![leaf.clone(), grow(g)]);
        }
        g
    }

    /// Pair generator with component-wise shrinking.
    pub fn tuple2<U: Clone + 'static>(a: Gen<T>, b: Gen<U>) -> Gen<(T, U)> {
        let (sa, sb) = (a.clone(), b.clone());
        Gen::with_shrink(
            move |rng| (a.generate(rng), b.generate(rng)),
            move |(x, y)| {
                let mut out: Vec<(T, U)> =
                    sa.shrink(x).into_iter().map(|x2| (x2, y.clone())).collect();
                out.extend(sb.shrink(y).into_iter().map(|y2| (x.clone(), y2)));
                out
            },
        )
    }

    /// `Option<T>`: ~1-in-4 `None`. Shrinks toward `None`, then inside.
    pub fn option_of(inner: Gen<T>) -> Gen<Option<T>> {
        let s = inner.clone();
        Gen::with_shrink(
            move |rng| {
                if rng.gen_bool(0.25) {
                    None
                } else {
                    Some(inner.generate(rng))
                }
            },
            move |v| match v {
                None => Vec::new(),
                Some(x) => {
                    let mut out = vec![None];
                    out.extend(s.shrink(x).into_iter().map(Some));
                    out
                }
            },
        )
    }

    /// Vector with a length drawn from `len`. Shrinks by halving, dropping
    /// single elements, and shrinking elements in place.
    pub fn vec_of(elem: Gen<T>, len: std::ops::Range<usize>) -> Gen<Vec<T>> {
        assert!(!len.is_empty(), "vec_of: empty length range");
        let min_len = len.start;
        let s = elem.clone();
        Gen::with_shrink(
            move |rng| {
                let n = rng.gen_range(len.clone());
                (0..n).map(|_| elem.generate(rng)).collect()
            },
            move |v: &Vec<T>| {
                let mut out: Vec<Vec<T>> = Vec::new();
                // Halve.
                if v.len() / 2 >= min_len && v.len() > min_len {
                    out.push(v[..v.len() / 2].to_vec());
                }
                // Drop one element.
                if v.len() > min_len {
                    for i in 0..v.len() {
                        let mut smaller = v.clone();
                        smaller.remove(i);
                        out.push(smaller);
                        if v.len() > 8 {
                            break; // One representative drop for long vecs.
                        }
                    }
                }
                // Shrink each element in place (first few positions).
                for i in 0..v.len().min(8) {
                    for cand in s.shrink(&v[i]) {
                        let mut copy = v.clone();
                        copy[i] = cand;
                        out.push(copy);
                    }
                }
                out
            },
        )
    }
}

macro_rules! int_gen {
    ($fn_name:ident, $any_name:ident, $t:ty) => {
        impl Gen<$t> {
            /// Uniform draw from an inclusive range; shrinks toward the
            /// value in the range closest to zero.
            #[allow(unused_comparisons)] // macro also expands for unsigned
            pub fn $fn_name(range: std::ops::RangeInclusive<$t>) -> Gen<$t> {
                let (lo, hi) = (*range.start(), *range.end());
                let anchor: $t = if lo <= 0 && 0 <= hi {
                    0
                } else if lo > 0 {
                    lo
                } else {
                    hi
                };
                Gen::with_shrink(
                    move |rng| rng.gen_range(lo..=hi),
                    move |&v| {
                        let mut out = Vec::new();
                        if v != anchor {
                            out.push(anchor);
                            let halfway = anchor + (v - anchor) / 2;
                            if halfway != anchor && halfway != v {
                                out.push(halfway);
                            }
                            let step = if v > anchor { v - 1 } else { v + 1 };
                            if step != halfway {
                                out.push(step);
                            }
                        }
                        out
                    },
                )
            }

            /// Uniform draw over the whole domain, shrinking toward zero.
            pub fn $any_name() -> Gen<$t> {
                Gen::with_shrink(
                    |rng| rng.gen(),
                    |&v| {
                        if v == 0 {
                            Vec::new()
                        } else {
                            // Toward zero: zero itself, halfway, one step.
                            let step = if v > 0 { v - 1 } else { v + 1 };
                            vec![0, v / 2, step]
                        }
                    },
                )
            }
        }
    };
}
int_gen!(i64_in, i64_any, i64);
int_gen!(i32_in, i32_any, i32);
int_gen!(usize_in, usize_any, usize);

impl Gen<u64> {
    /// Uniform `u64`, shrinking toward zero.
    pub fn u64_any() -> Gen<u64> {
        Gen::with_shrink(
            |rng| rng.gen(),
            |&v| {
                if v == 0 {
                    Vec::new()
                } else {
                    vec![0, v / 2, v - 1]
                }
            },
        )
    }
}

impl Gen<bool> {
    /// Fair coin, shrinking toward `false`.
    pub fn bool_any() -> Gen<bool> {
        Gen::with_shrink(
            |rng| rng.gen(),
            |&v| if v { vec![false] } else { Vec::new() },
        )
    }
}

impl Gen<f64> {
    /// Uniform draw from `[lo, hi)`, shrinking toward the in-range value
    /// closest to zero.
    pub fn f64_in(lo: f64, hi: f64) -> Gen<f64> {
        let anchor = if lo <= 0.0 && 0.0 < hi {
            0.0
        } else if lo > 0.0 {
            lo
        } else {
            hi - (hi - lo) * f64::EPSILON.max(1e-12)
        };
        Gen::with_shrink(
            move |rng| rng.gen_range(lo..hi),
            move |&v| {
                if v == anchor {
                    Vec::new()
                } else {
                    let halfway = anchor + (v - anchor) / 2.0;
                    vec![anchor, halfway]
                }
            },
        )
    }
}

impl Gen<String> {
    /// String of `len` chars drawn uniformly from `alphabet` (the
    /// regex-class-style generator, e.g. `"[a-z0-9]{0,8}"` becomes
    /// `Gen::string_of(&alphabet("a-z0-9"), 0..9)`). Shrinks by dropping
    /// characters.
    pub fn string_of(alphabet: &[char], len: std::ops::Range<usize>) -> Gen<String> {
        assert!(!alphabet.is_empty(), "string_of: empty alphabet");
        let chars: Rc<[char]> = alphabet.into();
        let min_len = len.start;
        Gen::with_shrink(
            move |rng| {
                let n = rng.gen_range(len.clone());
                (0..n)
                    .map(|_| chars[rng.below(chars.len() as u64) as usize])
                    .collect()
            },
            move |s: &String| shrink_string(s, min_len),
        )
    }

    /// Arbitrary printable text up to `max_len` chars: ASCII-heavy with a
    /// sprinkling of multi-byte code points — the `"\\PC{0,n}"` stand-in
    /// used by never-panics properties.
    pub fn printable(max_len: usize) -> Gen<String> {
        Gen::with_shrink(
            move |rng| {
                let n = rng.gen_range(0..=max_len);
                (0..n)
                    .map(|_| match rng.below(8) {
                        0..=5 => rng.gen_range(0x20u32..0x7F), // printable ASCII
                        6 => rng.gen_range(0xA1u32..0x250),    // Latin supplements
                        _ => rng.gen_range(0x4E00u32..0x4F00), // CJK block
                    })
                    .filter_map(char::from_u32)
                    .collect()
            },
            |s: &String| shrink_string(s, 0),
        )
    }
}

fn shrink_string(s: &str, min_len: usize) -> Vec<String> {
    let chars: Vec<char> = s.chars().collect();
    let mut out = Vec::new();
    if chars.len() > min_len {
        if chars.len() / 2 >= min_len {
            out.push(chars[..chars.len() / 2].iter().collect());
        }
        for i in 0..chars.len().min(8) {
            let mut smaller = chars.clone();
            smaller.remove(i);
            out.push(smaller.into_iter().collect());
        }
    }
    out
}

/// Expand a compact `a-z0-9_`-style class description into its characters.
/// `-` between two characters denotes an inclusive range; a leading or
/// trailing `-` is literal.
pub fn alphabet(class: &str) -> Vec<char> {
    let chars: Vec<char> = class.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
            assert!(lo <= hi, "alphabet: inverted range in {class}");
            out.extend((lo..=hi).filter_map(char::from_u32));
            i += 3;
        } else {
            out.push(chars[i]);
            i += 1;
        }
    }
    out
}

/// One property failure: what to report and what to shrink.
struct Failure {
    message: String,
}

fn run_case<T, P>(prop: &P, value: &T) -> Option<Failure>
where
    P: Fn(&T) -> Result<(), String>,
{
    install_quiet_hook();
    QUIET_PANICS.with(|q| q.set(true));
    let outcome = catch_unwind(AssertUnwindSafe(|| prop(value)));
    QUIET_PANICS.with(|q| q.set(false));
    match outcome {
        Ok(Ok(())) => None,
        Ok(Err(msg)) => Some(Failure { message: msg }),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic payload>");
            Some(Failure {
                message: format!("panicked: {msg}"),
            })
        }
    }
}

/// Check `prop` against `config.cases` generated inputs.
///
/// On failure the input is greedily shrunk and the harness panics with the
/// case seed; set `MAXSON_TESTKIT_SEED=<seed>` to replay exactly that case
/// (each property then runs that single case).
pub fn check<T, P>(name: &str, config: &Config, gen: &Gen<T>, prop: P)
where
    T: Debug + Clone + 'static,
    P: Fn(&T) -> Result<(), String>,
{
    let replay_seed = std::env::var(SEED_ENV).ok().map(|raw| {
        let raw = raw.trim();
        let parsed = raw.strip_prefix("0x").map_or_else(
            || raw.parse::<u64>().ok(),
            |hex| u64::from_str_radix(hex, 16).ok(),
        );
        parsed.unwrap_or_else(|| panic!("{SEED_ENV}={raw} is not a u64 (decimal or 0x-hex)"))
    });

    // Per-property base stream: stable across runs, distinct per property.
    let mut base = 0x4D41_5853_4F4E_u64; // "MAXSON"
    for b in name.bytes() {
        base = splitmix64(&mut base) ^ u64::from(b);
    }

    let cases = if replay_seed.is_some() {
        1
    } else {
        config.cases
    };
    for case in 0..cases {
        let case_seed = replay_seed.unwrap_or_else(|| {
            let mut s = base ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            splitmix64(&mut s)
        });
        let mut rng = Rng::seed_from_u64(case_seed);
        let value = gen.generate(&mut rng);
        let Some(failure) = run_case(&prop, &value) else {
            continue;
        };

        // Greedy shrink: walk to the first still-failing candidate until no
        // candidate fails or the step budget runs out.
        let mut minimal = value;
        let mut message = failure.message;
        let mut steps = 0;
        'outer: while steps < config.max_shrink_steps {
            for candidate in gen.shrink(&minimal) {
                if let Some(f) = run_case(&prop, &candidate) {
                    minimal = candidate;
                    message = f.message;
                    steps += 1;
                    continue 'outer;
                }
            }
            break;
        }

        panic!(
            "property '{name}' failed at case {case}/{cases} (seed 0x{case_seed:016x})\n\
             \x20 {message}\n\
             \x20 minimal failing input ({steps} shrink steps): {minimal:?}\n\
             replay exactly this case with: {SEED_ENV}=0x{case_seed:016x}"
        );
    }
}

/// Property-scoped assertion: evaluates to `Err` (with location and text)
/// instead of panicking, so the harness can shrink and report the seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!("[{}:{}] {}", file!(), line!(), format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{:?} != {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "both sides equal {:?}", l);
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let counted = std::cell::Cell::new(0u32);
        let cfg = Config::with_cases(50);
        check("counts", &cfg, &Gen::i64_in(-10..=10), |_| {
            counted.set(counted.get() + 1);
            Ok(())
        });
        assert_eq!(counted.get(), 50);
    }

    #[test]
    fn failing_property_reports_seed_and_shrinks() {
        let cfg = Config::with_cases(200);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            check("fails_over_100", &cfg, &Gen::i64_in(0..=1000), |&v| {
                crate::prop_assert!(v <= 100, "{v} > 100");
                Ok(())
            });
        }));
        let payload = outcome.expect_err("property must fail");
        let msg = payload.downcast_ref::<String>().expect("string panic");
        assert!(
            msg.contains("MAXSON_TESTKIT_SEED=0x"),
            "seed missing: {msg}"
        );
        // Greedy shrink on `v > 100` bottoms out at the boundary 101.
        assert!(
            msg.contains("minimal failing input"),
            "no shrink report: {msg}"
        );
        assert!(
            msg.contains("101"),
            "expected shrink to boundary 101: {msg}"
        );
    }

    #[test]
    fn replayed_seed_reproduces_the_same_value() {
        // Generate once, remember the value for a fixed seed; then check
        // determinism of the generator under that seed.
        let g = Gen::tuple2(
            Gen::i64_in(-1000..=1000),
            Gen::string_of(&alphabet("a-z0-9"), 0..12),
        );
        let mut a = Rng::seed_from_u64(0xDEAD_BEEF);
        let mut b = Rng::seed_from_u64(0xDEAD_BEEF);
        assert_eq!(g.generate(&mut a), g.generate(&mut b));
    }

    #[test]
    fn panicking_property_is_caught_and_reported() {
        let cfg = Config::with_cases(10);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            check("panics", &cfg, &Gen::i64_in(0..=10), |&v| {
                assert!(v < 0, "boom {v}"); // always panics
                Ok(())
            });
        }));
        let payload = outcome.expect_err("must fail");
        let msg = payload.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("panicked"), "panic not converted: {msg}");
        assert!(msg.contains("seed 0x"), "seed missing: {msg}");
    }

    #[test]
    fn vec_shrinking_reaches_small_witness() {
        // Property: no vector contains a negative number. Minimal failing
        // input should shrink down to a single-element vector.
        let cfg = Config {
            cases: 300,
            max_shrink_steps: 2000,
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            check(
                "no_negatives",
                &cfg,
                &Gen::vec_of(Gen::i64_in(-5..=50), 0..20),
                |v| {
                    crate::prop_assert!(v.iter().all(|&x| x >= 0), "found negative in {v:?}");
                    Ok(())
                },
            );
        }));
        let payload = outcome.expect_err("must fail");
        let msg = payload.downcast_ref::<String>().expect("string panic");
        // The witness should have been shrunk to exactly [-1].
        assert!(msg.contains("[-1]"), "expected minimal witness [-1]: {msg}");
    }

    #[test]
    fn alphabet_expands_ranges() {
        assert_eq!(alphabet("a-e"), vec!['a', 'b', 'c', 'd', 'e']);
        let digits = alphabet("0-9_");
        assert_eq!(digits.len(), 11);
        assert!(digits.contains(&'_'));
        assert_eq!(alphabet("-x"), vec!['-', 'x']);
    }

    #[test]
    fn one_of_and_recursive_generate_all_variants() {
        let g = Gen::one_of(vec![Gen::just(1u8), Gen::just(2), Gen::just(3)]);
        let mut rng = Rng::seed_from_u64(1);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(g.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }
}
