//! A small wall-clock benchmark runner: warmup iterations followed by N
//! timed iterations, reporting median and p95.
//!
//! This replaces the criterion dependency for the workspace's microbenches.
//! Stats are plain data; bench binaries feed the medians into
//! `maxson_bench::report::{Report, Series}`, which renders the same aligned
//! text tables and `bench-results/<id>.json` files as every other
//! experiment binary, so downstream tooling reads one JSON schema
//! (`{id, title, notes, series: [{name, points: [{label, value}]}]}`).
//!
//! Iteration counts scale down under `MAXSON_BENCH_FAST=1` so benches can
//! double as smoke tests in CI.

use std::hint::black_box;
use std::time::Instant;

/// Re-exported so bench binaries only import from one place.
pub use std::hint::black_box as bb;

/// Runner configuration: how many warmup and timed iterations per bench.
#[derive(Debug, Clone, Copy)]
pub struct BenchRunner {
    /// Untimed warmup iterations (page in code/data, settle caches).
    pub warmup_iters: u32,
    /// Timed iterations (each contributes one sample).
    pub iters: u32,
}

impl Default for BenchRunner {
    fn default() -> Self {
        BenchRunner {
            warmup_iters: 3,
            iters: 30,
        }
    }
}

impl BenchRunner {
    /// Default runner, honoring `MAXSON_BENCH_FAST=1` (3 timed iterations —
    /// a smoke-test pass) and `MAXSON_BENCH_ITERS=<n>` overrides.
    pub fn from_env() -> Self {
        let mut runner = BenchRunner::default();
        if std::env::var_os("MAXSON_BENCH_FAST").is_some_and(|v| v == "1") {
            runner.warmup_iters = 1;
            runner.iters = 3;
        }
        if let Some(n) = std::env::var("MAXSON_BENCH_ITERS")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
        {
            runner.iters = n.max(1);
        }
        runner
    }

    /// Run `f` warmup+timed times and report per-iteration nanoseconds.
    /// Prints a one-line summary to stdout.
    pub fn run<R>(&self, name: &str, mut f: impl FnMut() -> R) -> BenchStats {
        for _ in 0..self.warmup_iters {
            black_box(f());
        }
        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.iters as usize);
        for _ in 0..self.iters.max(1) {
            let start = Instant::now();
            black_box(f());
            samples_ns.push(start.elapsed().as_nanos() as f64);
        }
        let stats = BenchStats::from_samples(name, &mut samples_ns);
        println!("{stats}");
        stats
    }
}

/// Summary statistics of one bench (all values in nanoseconds).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchStats {
    /// Bench name as passed to [`BenchRunner::run`].
    pub name: String,
    /// Number of timed samples.
    pub iters: u32,
    /// Median per-iteration time.
    pub median_ns: f64,
    /// 95th-percentile per-iteration time.
    pub p95_ns: f64,
    /// Mean per-iteration time.
    pub mean_ns: f64,
    /// Fastest iteration.
    pub min_ns: f64,
    /// Slowest iteration.
    pub max_ns: f64,
}

impl BenchStats {
    /// Build stats from raw samples (sorts `samples` in place).
    pub fn from_samples(name: &str, samples: &mut [f64]) -> Self {
        assert!(!samples.is_empty(), "bench '{name}' produced no samples");
        samples.sort_unstable_by(f64::total_cmp);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        BenchStats {
            name: name.to_string(),
            iters: samples.len() as u32,
            median_ns: quantile(samples, 0.5),
            p95_ns: quantile(samples, 0.95),
            mean_ns: mean,
            min_ns: samples[0],
            max_ns: samples[samples.len() - 1],
        }
    }

    /// Median in milliseconds (the natural unit for `Report` points).
    pub fn median_ms(&self) -> f64 {
        self.median_ns / 1e6
    }

    /// p95 in milliseconds.
    pub fn p95_ms(&self) -> f64 {
        self.p95_ns / 1e6
    }
}

impl std::fmt::Display for BenchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bench {:<40} median {:>12}  p95 {:>12}  ({} iters)",
            self.name,
            human_ns(self.median_ns),
            human_ns(self.p95_ns),
            self.iters
        )
    }
}

/// Interpolated quantile of an ascending-sorted sample array.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

fn human_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_from_known_samples() {
        let mut samples = vec![10.0, 20.0, 30.0, 40.0, 50.0];
        let s = BenchStats::from_samples("t", &mut samples);
        assert_eq!(s.median_ns, 30.0);
        assert_eq!(s.min_ns, 10.0);
        assert_eq!(s.max_ns, 50.0);
        assert_eq!(s.mean_ns, 30.0);
        assert!((s.p95_ns - 48.0).abs() < 1e-9, "p95 {}", s.p95_ns);
        assert_eq!(s.iters, 5);
    }

    #[test]
    fn runner_collects_requested_iterations() {
        let mut calls = 0u32;
        let runner = BenchRunner {
            warmup_iters: 2,
            iters: 5,
        };
        let stats = runner.run("counting", || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 7, "2 warmup + 5 timed");
        assert_eq!(stats.iters, 5);
        assert!(stats.min_ns <= stats.median_ns && stats.median_ns <= stats.max_ns);
        assert!(stats.median_ms() >= 0.0);
    }

    #[test]
    fn quantile_interpolates() {
        let sorted = [0.0, 100.0];
        assert_eq!(quantile(&sorted, 0.5), 50.0);
        assert_eq!(quantile(&sorted, 0.95), 95.0);
        assert_eq!(quantile(&[42.0], 0.95), 42.0);
    }

    #[test]
    fn human_units() {
        assert_eq!(human_ns(500.0), "500 ns");
        assert_eq!(human_ns(1_500.0), "1.500 us");
        assert_eq!(human_ns(2_500_000.0), "2.500 ms");
        assert_eq!(human_ns(3_000_000_000.0), "3.000 s");
    }
}
