//! Adversarial JSON corpus generation for parser differential testing.
//!
//! The three parser classes in `maxson-json` (Jackson-style DOM, Mison
//! structural index, On-Demand tape) must agree byte-for-byte on every
//! document they all accept, and must all *reject* — with an error, never a
//! panic — every document outside the grammar. Hand-written fixtures cover
//! the shapes someone thought of; this module generates the rest from a
//! seed, so a differential failure is replayable from one printed number.
//!
//! Two tiers:
//!
//! * [`valid_docs`] — grammar-valid documents stressing the areas where
//!   parsers historically diverge: deep nesting, escape- and
//!   unicode-heavy strings, huge/tiny/subnormal numbers, integer-boundary
//!   values, duplicate keys (first-wins semantics), empty containers, and
//!   wide arrays. Every document is a top-level object with a stable `id`
//!   field plus a randomized feature mix keyed by [`query_paths`], so
//!   engine-level tests can issue selective queries that sometimes match
//!   and sometimes miss.
//! * [`invalid_docs`] — documents every conforming parser must reject:
//!   truncations, trailing garbage, bad escapes, lone surrogates, raw
//!   control characters, leading zeros, bare keywords, unbalanced
//!   brackets, and nesting beyond the depth limit.
//!
//! [`mutate_bytes`] turns any document into a byte-level fuzz case
//! (flips, insertions, deletions, truncation), for property tests that
//! assert "malformed input returns an error, never a panic".
//!
//! This module deliberately does **not** depend on `maxson-json`: it
//! produces strings only, and the parser crates' own tests decide what the
//! strings mean. That keeps the dependency arrow pointing one way.

use crate::rng::{Rng, SliceRandom};

/// JSONPaths engine-level differential tests can query against
/// [`valid_docs`] output: each targets a field the generator sometimes
/// emits (so results mix hits and misses), plus one guaranteed miss.
pub fn query_paths() -> &'static [&'static str] {
    &[
        "$.id",
        "$.name",
        "$.num",
        "$.arr[0]",
        "$.arr[2]",
        "$.deep.x",
        "$.dup",
        "$.flag",
        "$.missing",
    ]
}

/// Generate `count` grammar-valid adversarial documents. Deterministic in
/// `seed`; document `i` always carries `"id": i` as its first field.
pub fn valid_docs(seed: u64, count: usize) -> Vec<String> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..count).map(|i| valid_doc(&mut rng, i)).collect()
}

fn valid_doc(rng: &mut Rng, id: usize) -> String {
    let mut doc = format!("{{\"id\": {id}");
    // Independent coin flips per feature: docs differ in which query paths
    // hit, and most docs carry several adversarial shapes at once.
    if rng.gen_bool(0.7) {
        doc.push_str(&format!(", \"name\": {}", adversarial_string(rng)));
    }
    if rng.gen_bool(0.7) {
        doc.push_str(&format!(", \"num\": {}", adversarial_number(rng)));
    }
    if rng.gen_bool(0.6) {
        doc.push_str(&format!(", \"arr\": {}", adversarial_array(rng)));
    }
    if rng.gen_bool(0.6) {
        // `$.deep.x` stays at depth 2 while the sibling under "noise"
        // nests deeply — exactly the shape a skipping parser should hop.
        let x = rng.gen_range(-1000i64..1000);
        let depth = rng.gen_range(3usize..=40);
        doc.push_str(&format!(
            ", \"deep\": {{\"x\": {x}, \"noise\": {}}}",
            nested_value(rng, depth)
        ));
    }
    if rng.gen_bool(0.4) {
        // Duplicate key: first occurrence must win in every parser.
        let first = rng.gen_range(0i64..100);
        let second = first + 1000;
        doc.push_str(&format!(", \"dup\": {first}, \"dup\": {second}"));
    }
    if rng.gen_bool(0.5) {
        let lit = *["true", "false", "null"].choose(rng).unwrap();
        doc.push_str(&format!(", \"flag\": {lit}"));
    }
    if rng.gen_bool(0.4) {
        doc.push_str(", \"empty_obj\": {}, \"empty_arr\": []");
    }
    if rng.gen_bool(0.3) {
        // Unqueried bulk the lazy parser should never materialize.
        doc.push_str(&format!(", \"padding\": {}", adversarial_array(rng)));
    }
    doc.push('}');
    doc
}

/// A quoted JSON string exercising escapes, unicode, and length extremes.
fn adversarial_string(rng: &mut Rng) -> String {
    match rng.gen_range(0u32..6) {
        0 => "\"\"".to_string(),
        1 => {
            // Escape soup: every single-character escape the grammar has.
            let escapes = ["\\\"", "\\\\", "\\/", "\\b", "\\f", "\\n", "\\r", "\\t"];
            let mut s = String::from("\"");
            for _ in 0..rng.gen_range(1usize..=8) {
                s.push_str(escapes.choose(rng).unwrap());
                s.push(char::from(rng.gen_range(b'a'..=b'z')));
            }
            s.push('"');
            s
        }
        2 => {
            // \u escapes incl. a surrogate pair (🂡) and NUL.
            let units = ["\\u0041", "\\u00e9", "\\u2603", "\\u0000", "\\uD83C\\uDCA1"];
            let mut s = String::from("\"");
            for _ in 0..rng.gen_range(1usize..=5) {
                s.push_str(units.choose(rng).unwrap());
            }
            s.push('"');
            s
        }
        3 => {
            // Raw multi-byte UTF-8 straddling SWAR word boundaries.
            let runes = ["é", "☃", "日本語", "🂡", "ß"];
            let mut s = String::from("\"");
            for _ in 0..rng.gen_range(1usize..=12) {
                s.push_str(runes.choose(rng).unwrap());
            }
            s.push('"');
            s
        }
        4 => {
            // Long plain string crossing several 64-byte index words.
            let len = rng.gen_range(64usize..=256);
            let mut s = String::with_capacity(len + 2);
            s.push('"');
            for _ in 0..len {
                s.push(char::from(rng.gen_range(b' '..=b'~').clamp(b' ', b'~')));
            }
            // The printable range includes '"' and '\\'; neuter them.
            let inner: String = s[1..]
                .chars()
                .map(|c| if c == '"' || c == '\\' { 'x' } else { c })
                .collect();
            format!("\"{inner}\"")
        }
        _ => {
            // A string that *looks* like structure: braces, colons, commas.
            "\"{\\\"fake\\\": [1, 2], \\\"t\\\": true}\"".to_string()
        }
    }
}

/// A number exercising magnitude, precision, and representation edges.
fn adversarial_number(rng: &mut Rng) -> String {
    let fixed = [
        "0",
        "-0",
        "0.0",
        "-0.0",
        "9223372036854775807",  // i64::MAX
        "-9223372036854775808", // i64::MIN
        "9223372036854775808",  // i64::MAX + 1 → f64
        "-9223372036854775809", // i64::MIN - 1 → f64
        "1e308",                // near f64::MAX
        "-1e308",
        "5e-324",                  // smallest subnormal
        "2.2250738585072014e-308", // smallest normal
        "1e400",                   // overflows to inf-territory input text
        "1E+10",
        "2e-3",
        "0.1",
        "3.141592653589793",
        "123456789.123456789",
    ];
    match rng.gen_range(0u32..4) {
        0 => fixed.choose(rng).unwrap().to_string(),
        1 => format!("{}", rng.gen_range(i64::MIN..=i64::MAX)),
        2 => format!(
            "{}.{}",
            rng.gen_range(-1000i64..1000),
            rng.gen_range(0u32..u32::MAX)
        ),
        _ => format!(
            "{}{}e{}{}",
            if rng.gen_bool(0.5) { "-" } else { "" },
            rng.gen_range(1u64..10_000),
            if rng.gen_bool(0.5) { "+" } else { "-" },
            rng.gen_range(0u32..30)
        ),
    }
}

/// An array mixing scalars, nested containers, and empties.
fn adversarial_array(rng: &mut Rng) -> String {
    let n = rng.gen_range(0usize..=8);
    let items: Vec<String> = (0..n)
        .map(|_| match rng.gen_range(0u32..5) {
            0 => adversarial_number(rng),
            1 => adversarial_string(rng),
            2 => (*["true", "false", "null"].choose(rng).unwrap()).to_string(),
            3 => format!("[{}]", rng.gen_range(0i64..100)),
            _ => format!("{{\"k\": {}}}", rng.gen_range(0i64..100)),
        })
        .collect();
    format!("[{}]", items.join(", "))
}

/// A value nested `depth` levels deep, alternating objects and arrays.
fn nested_value(rng: &mut Rng, depth: usize) -> String {
    let mut s = String::new();
    let mut closers = String::new();
    for level in 0..depth {
        if level % 2 == 0 {
            s.push_str("{\"n\": ");
            closers.insert(0, '}');
        } else {
            s.push('[');
            closers.insert(0, ']');
        }
    }
    s.push_str(&format!("{}", rng.gen_range(0i64..100)));
    s.push_str(&closers);
    s
}

/// Generate `count` documents that every parser must reject with an error
/// (never a panic). Deterministic in `seed`. Covers truncation, trailing
/// garbage, escape and literal malformations, structural imbalance, and
/// nesting past the depth limit.
pub fn invalid_docs(seed: u64, count: usize) -> Vec<String> {
    let mut rng = Rng::seed_from_u64(seed ^ 0x1BAD_D0C5);
    (0..count).map(|i| invalid_doc(&mut rng, i)).collect()
}

fn invalid_doc(rng: &mut Rng, i: usize) -> String {
    match rng.gen_range(0u32..12) {
        0 => {
            // Truncate a valid doc at a random byte (≥1 so it's non-empty
            // garbage, < len so it's actually cut).
            let doc = valid_doc(rng, i);
            let cut = rng.gen_range(1usize..doc.len());
            let mut bytes = doc.into_bytes();
            bytes.truncate(cut);
            String::from_utf8_lossy(&bytes).into_owned()
        }
        1 => {
            // Trailing garbage after a complete document.
            let doc = valid_doc(rng, i);
            let tail = ["x", "}", "]", ", 1", " {\"b\": 2}", "\u{0}", "tru"];
            format!("{doc}{}", tail.choose(rng).unwrap())
        }
        2 => format!("{{\"a\": 0{}}}", rng.gen_range(10u32..100)), // leading zero
        3 => {
            let bad = ["tru", "fals", "nul", "truee", "nan", "inf", "None"];
            format!("{{\"a\": {}}}", bad.choose(rng).unwrap())
        }
        4 => format!("{{\"a\": \"unterminated {i}"),
        5 => format!("{{\"a\": \"bad \\q escape {i}\"}}"),
        6 => format!("{{\"a\": \"lone \\uD800 surrogate {i}\"}}"),
        7 => format!("{{\"a\": \"ctrl \u{1} char {i}\"}}"),
        8 => {
            // Nesting beyond MAX_DEPTH (128).
            let depth = rng.gen_range(130usize..=200);
            format!("{}{}{}", "[".repeat(depth), i, "]".repeat(depth))
        }
        9 => {
            let bad = [
                "{\"a\": 1,}",
                "{\"a\" 1}",
                "{\"a\": }",
                "{,}",
                "[1,,2]",
                "[1 2]",
                "{\"a\": 1",
                "[1, 2",
                "}",
                "]",
                "{\"a\": 1]",
                "[1, 2}",
            ];
            (*bad.choose(rng).unwrap()).to_string()
        }
        10 => {
            let ws = ["", " ", "\t\n", "  \r\n  "];
            (*ws.choose(rng).unwrap()).to_string()
        }
        _ => format!("{{\"a\": .5, \"b\": {i}}}"), // bare leading dot
    }
}

/// Apply 1–4 random byte-level mutations (flip, insert, delete, truncate,
/// splice) to `doc`, returning the result re-interpreted as UTF-8 (lossy,
/// so parsers always receive a `&str` — invalid sequences become U+FFFD).
/// The output may still be valid JSON; callers asserting rejection should
/// pair it with a parse check, and callers asserting "no panic" need
/// nothing else.
pub fn mutate_bytes(doc: &str, rng: &mut Rng) -> String {
    let mut bytes = doc.as_bytes().to_vec();
    for _ in 0..rng.gen_range(1usize..=4) {
        if bytes.is_empty() {
            bytes.push(rng.gen_range(0u8..=255));
            continue;
        }
        let pos = rng.gen_range(0usize..bytes.len());
        match rng.gen_range(0u32..5) {
            0 => bytes[pos] = rng.gen_range(0u8..=255),
            1 => bytes.insert(pos, rng.gen_range(0u8..=255)),
            2 => {
                bytes.remove(pos);
            }
            3 => bytes.truncate(pos),
            _ => {
                // Splice a short window from elsewhere in the doc.
                let src = rng.gen_range(0usize..bytes.len());
                let len = rng.gen_range(1usize..=8).min(bytes.len() - src);
                let window: Vec<u8> = bytes[src..src + len].to_vec();
                let at = pos.min(bytes.len());
                bytes.splice(at..at, window);
            }
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_in_seed() {
        assert_eq!(valid_docs(42, 50), valid_docs(42, 50));
        assert_eq!(invalid_docs(42, 50), invalid_docs(42, 50));
        assert_ne!(valid_docs(42, 50), valid_docs(43, 50));
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        let doc = &valid_docs(1, 1)[0];
        assert_eq!(mutate_bytes(doc, &mut a), mutate_bytes(doc, &mut b));
    }

    #[test]
    fn valid_docs_have_stable_ids_and_adversarial_features() {
        let docs = valid_docs(7, 200);
        assert_eq!(docs.len(), 200);
        for (i, d) in docs.iter().enumerate() {
            assert!(
                d.starts_with(&format!("{{\"id\": {i}")),
                "doc {i} starts with its id: {d}"
            );
            assert!(d.ends_with('}'));
        }
        // Feature coverage: over 200 docs every generator arm fires.
        let all = docs.join("\n");
        for needle in [
            "\\u",      // unicode escapes
            "\\n",      // simple escapes
            "\"dup\":", // duplicate keys
            "\"empty_obj\": {}",
            "\"deep\":",
            "5e-324", // only from the fixed adversarial-number pool
            "☃",
        ] {
            assert!(all.contains(needle), "corpus never produced {needle:?}");
        }
        // Deep nesting actually nests: some doc has a long bracket run.
        assert!(
            docs.iter().any(|d| d.contains("{\"n\": [{\"n\": ")),
            "nested_value alternation missing"
        );
    }

    #[test]
    fn duplicate_keys_keep_distinct_values() {
        // The first-wins regression needs first != second occurrence.
        let docs = valid_docs(11, 100);
        let with_dup: Vec<&String> = docs.iter().filter(|d| d.contains("\"dup\":")).collect();
        assert!(!with_dup.is_empty());
        for d in with_dup {
            let count = d.matches("\"dup\":").count();
            assert_eq!(count, 2, "dup key appears exactly twice in {d}");
        }
    }

    #[test]
    fn invalid_docs_cover_the_rejection_classes() {
        let docs = invalid_docs(3, 300);
        assert_eq!(docs.len(), 300);
        let has = |f: &dyn Fn(&str) -> bool| docs.iter().any(|d| f(d));
        assert!(has(&|d| d.contains("\\q")), "bad escape");
        assert!(has(&|d| d.contains("\\uD800")), "lone surrogate");
        assert!(has(&|d| d.starts_with("[[[[")), "deep nesting");
        assert!(has(&|d| d.trim().is_empty()), "empty/whitespace");
        assert!(has(&|d| d.contains(": 0")
            && !d.contains(": 0}")
            && d.chars().filter(|c| c.is_ascii_digit()).count() > 2));
    }

    #[test]
    fn mutate_bytes_always_yields_utf8_and_often_changes_input() {
        let mut rng = Rng::seed_from_u64(5);
        let docs = valid_docs(9, 20);
        let mut changed = 0;
        for d in &docs {
            for _ in 0..10 {
                let m = mutate_bytes(d, &mut rng);
                // from_utf8_lossy guarantees valid UTF-8; assert it anyway.
                assert!(std::str::from_utf8(m.as_bytes()).is_ok());
                if &m != d {
                    changed += 1;
                }
            }
        }
        assert!(changed > 150, "mutations mostly change the doc: {changed}");
    }
}
