//! Deterministic pseudo-random number generation.
//!
//! The core generator is **xoshiro256++** (Blackman & Vigna), whose 256-bit
//! state is expanded from a single `u64` seed with **SplitMix64** — the
//! construction the reference implementation recommends so that similar
//! seeds still produce uncorrelated streams. The API mirrors the subset of
//! the `rand` crate this workspace used (`seed_from_u64`, `gen_range`,
//! `gen_bool`, `gen::<T>()`, slice `shuffle`/`choose`), so call sites port
//! mechanically while the workspace stays free of external registry
//! dependencies.
//!
//! Everything here is deterministic: the same seed always yields the same
//! stream, on every platform, which is what makes property-test failures
//! and synthetic workloads replayable from a printed seed.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step: advances `state` and returns the next output. Used for
/// seed expansion and for deriving per-case seeds in the property harness.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Build a generator from a `u64` seed via SplitMix64 expansion
    /// (drop-in for `SmallRng::seed_from_u64`).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Next raw 64-bit output (xoshiro256++ step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Next 32-bit output (upper half of the 64-bit stream).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw of a [`Random`] type (drop-in for `rng.gen::<T>()`).
    #[inline]
    pub fn gen<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    /// If `p` is not in `[0, 1]`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} not in [0, 1]");
        self.next_f64() < p
    }

    /// Uniform draw from a range (drop-in for `rng.gen_range(a..b)` /
    /// `rng.gen_range(a..=b)`).
    ///
    /// # Panics
    /// If the range is empty.
    #[inline]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Uniform `u64` below `n` (Lemire's multiply-shift with rejection; no
    /// modulo bias).
    ///
    /// # Panics
    /// If `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below: empty range");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut low = m as u64;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

/// Types a [`Rng`] can draw uniformly (the `rand::distributions::Standard`
/// subset the workspace uses).
pub trait Random {
    /// Draw one uniform value.
    fn random(rng: &mut Rng) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            #[inline]
            fn random(rng: &mut Rng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for bool {
    #[inline]
    fn random(rng: &mut Rng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` (matches `rand`'s `Standard` for floats).
    #[inline]
    fn random(rng: &mut Rng) -> Self {
        rng.next_f64()
    }
}

impl Random for f32 {
    /// Uniform in `[0, 1)`.
    #[inline]
    fn random(rng: &mut Rng) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with a uniform draw over an interval. Implemented for the integer
/// and float primitives; [`SampleRange`] is blanket-implemented over it so
/// `gen_range(0..10)` infers the element type from context exactly like
/// `rand` does.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_exclusive(rng: &mut Rng, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive(rng: &mut Rng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_exclusive(rng: &mut Rng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                // Two's-complement subtraction in the unsigned sister type
                // yields the span for signed types too.
                let span = (hi as $u).wrapping_sub(lo as $u);
                (lo as $u).wrapping_add(rng.below(span as u64) as $u) as $t
            }
            #[inline]
            fn sample_inclusive(rng: &mut Rng, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    // Full 64-bit domain: span + 1 would overflow.
                    return rng.next_u64() as $t;
                }
                (lo as $u).wrapping_add(rng.below(span + 1) as $u) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_exclusive(rng: &mut Rng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let v = lo + <$t as Random>::random(rng) * (hi - lo);
                // Guard against rounding up to the exclusive bound.
                if v < hi { v } else { lo }
            }
            #[inline]
            fn sample_inclusive(rng: &mut Rng, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                lo + <$t as Random>::random(rng) * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f64, f32);

/// Ranges a [`Rng`] can sample uniformly.
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample_from(self, rng: &mut Rng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from(self, rng: &mut Rng) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from(self, rng: &mut Rng) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Random slice operations (drop-in for `rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// Element type.
    type Item;
    /// Fisher–Yates shuffle in place.
    fn shuffle(&mut self, rng: &mut Rng);
    /// Uniformly pick a reference to one element (`None` if empty).
    fn choose<'a>(&'a self, rng: &mut Rng) -> Option<&'a Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle(&mut self, rng: &mut Rng) {
        for i in (1..self.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<'a>(&'a self, rng: &mut Rng) -> Option<&'a T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.below(self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs of xoshiro256++ from the all-distinct small state
        // {1, 2, 3, 4}, cross-checked against the public reference
        // implementation.
        let mut rng = Rng { s: [1, 2, 3, 4] };
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            first,
            vec![41943041, 58720359, 3588806011781223, 3591011842654386]
        );
    }

    #[test]
    fn splitmix_reference_vector() {
        // SplitMix64 test vector for seed 1234567.
        let mut s = 1234567u64;
        assert_eq!(splitmix64(&mut s), 6457827717110365317);
        assert_eq!(splitmix64(&mut s), 3203168211198807973);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(99);
        let mut b = Rng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(100);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let u = rng.gen_range(1usize..=12);
            assert!((1..=12).contains(&u));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let b = rng.gen_range(0u8..24);
            assert!(b < 24);
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = Rng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 7 values reachable: {seen:?}");
    }

    #[test]
    fn full_u64_inclusive_range_does_not_panic() {
        let mut rng = Rng::seed_from_u64(5);
        let _ = rng.gen_range(0u64..=u64::MAX);
        let _ = rng.gen_range(i64::MIN..=i64::MAX);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.03, "gen_bool(0.3) hit rate {frac}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation_and_choose_in_slice() {
        let mut rng = Rng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(
            v != (0..50).collect::<Vec<_>>(),
            "50 elements almost surely move"
        );
        let picked = *v.choose(&mut rng).unwrap();
        assert!(v.contains(&picked));
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut rng = Rng::seed_from_u64(17);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[rng.below(3) as usize] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn float_draws_stay_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(19);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }
}
