//! A counting global allocator for allocation-regression tests.
//!
//! Feature-gated (`count-alloc`) and hermetic: wraps [`std::alloc::System`]
//! and counts every `alloc`/`realloc` call in a process-wide atomic. A test
//! binary opts in by declaring it as its global allocator:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: maxson_testkit::alloc::CountingAllocator =
//!     maxson_testkit::alloc::CountingAllocator;
//! ```
//!
//! and then brackets the region under test with [`allocation_count`]
//! snapshots. Only *counts* are tracked (not bytes): the zero-copy scan
//! regression cares about allocations-per-row on the hot loop, which is
//! robust to allocator size classes and fragmentation, where byte totals
//! are not.
//!
//! The counter is monotonic and never reset — concurrent tests in the same
//! binary can't corrupt each other's deltas, but single-threaded measurement
//! is still required for a meaningful per-loop attribution (run the hot
//! loop on one thread, as the regression test does).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATION_COUNT: AtomicU64 = AtomicU64::new(0);

/// Number of heap allocations performed by the process so far (monotonic).
/// Subtract two snapshots to attribute allocations to a code region.
pub fn allocation_count() -> u64 {
    ALLOCATION_COUNT.load(Ordering::Relaxed)
}

/// System allocator wrapper that counts `alloc`/`realloc` calls.
pub struct CountingAllocator;

// SAFETY: delegates every operation verbatim to `System`; the only added
// behavior is a relaxed atomic increment, which cannot affect the returned
// memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATION_COUNT.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATION_COUNT.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATION_COUNT.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The allocator is not installed globally in this crate's own tests,
    // so only the counter plumbing is checkable here; the end-to-end
    // behavior is exercised by the workspace's alloc_regression test,
    // which does install it.
    #[test]
    fn counter_is_monotonic() {
        let a = allocation_count();
        ALLOCATION_COUNT.fetch_add(3, Ordering::Relaxed);
        let b = allocation_count();
        assert_eq!(b - a, 3);
    }

    #[test]
    fn delegates_to_system() {
        unsafe {
            let layout = Layout::from_size_align(64, 8).unwrap();
            let before = allocation_count();
            let p = CountingAllocator.alloc(layout);
            assert!(!p.is_null());
            assert_eq!(allocation_count() - before, 1);
            CountingAllocator.dealloc(p, layout);
            assert_eq!(allocation_count() - before, 1, "dealloc not counted");
        }
    }
}
