//! Quickstart: create a warehouse table with JSON payloads, query it the
//! slow way, run Maxson's midnight cycle, and query it again — watching the
//! parse phase disappear.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use maxson::mpjp::PredictorKind;
use maxson::{MaxsonPipeline, PipelineConfig};
use maxson_engine::session::Session;
use maxson_storage::file::WriteOptions;
use maxson_storage::{Cell, ColumnType, Field, Schema};
use maxson_trace::model::RecurrenceClass;
use maxson_trace::{JsonPathLocation, QueryRecord};

fn main() {
    let root = std::env::temp_dir().join(format!("maxson-quickstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // 1. Create a warehouse table shaped like the paper's Fig. 1: sales
    //    information stored as a JSON string column.
    let mut session = Session::open(&root).expect("open session");
    let schema = Schema::new(vec![
        Field::new("mall_id", ColumnType::Utf8),
        Field::new("date", ColumnType::Int64),
        Field::new("sale_logs", ColumnType::Utf8),
    ])
    .expect("schema");
    let mut catalog = session.catalog_mut();
    let table = catalog
        .create_table("mydb", "t", schema, 0)
        .expect("create table");
    let items = ["apple", "watermelon", "banana", "pear", "orange"];
    let rows: Vec<Vec<Cell>> = (0..5_000i64)
        .map(|i| {
            let name = items[i as usize % items.len()];
            vec![
                Cell::Str("0001".into()),
                Cell::Int(20190101 + i % 31),
                Cell::from(format!(
                    r#"{{"item_id": {i}, "item_name": "{name}", "sale_count": {}, "turnover": {}, "price": {}}}"#,
                    i % 40 + 1,
                    (i % 40 + 1) * 3,
                    3
                )),
            ]
        })
        .collect();
    table
        .append_file(
            &rows,
            WriteOptions {
                row_group_size: 500,
                ..Default::default()
            },
            1,
        )
        .expect("load data");
    drop(catalog);

    // 2. The daily query (Fig. 1's "most turnover items").
    let sql = "select mall_id, get_json_object(sale_logs, '$.item_name') as item_name, \
               get_json_object(sale_logs, '$.turnover') as turnover \
               from mydb.t where date between 20190101 and 20190103 \
               order by get_json_object(sale_logs, '$.turnover') desc limit 3";

    let before = session.execute(sql).expect("query without cache");
    println!("--- without Maxson ---");
    println!("{}", before.to_display_string());
    println!("metrics: {}\n", before.metrics.summary());

    // 3. Pretend this query has been recurring daily (two users, same
    //    paths), and run the midnight cycle: predict MPJPs, score, cache,
    //    and install the plan rewriter.
    let paths = ["$.item_name", "$.turnover"];
    let mut history = Vec::new();
    for day in 0..14u32 {
        for user in 0..2u32 {
            history.push(QueryRecord {
                query_id: u64::from(day * 2 + user),
                user_id: user,
                day,
                hour: 9,
                recurrence: RecurrenceClass::Daily,
                paths: paths
                    .iter()
                    .map(|p| JsonPathLocation::new("mydb", "t", "sale_logs", *p))
                    .collect(),
            });
        }
    }
    let mut pipeline = MaxsonPipeline::new(
        &root,
        PipelineConfig {
            predictor: PredictorKind::RepeatYesterday,
            ..Default::default()
        },
    );
    pipeline.observe(history.iter());
    let report = pipeline
        .run_midnight_cycle(&mut session, &history, 13, 100)
        .expect("midnight cycle");
    println!(
        "midnight cycle: predicted {} MPJPs, cached {} paths ({} bytes) in {:.3}s\n",
        report.predicted,
        report.cache.cached.len(),
        report.cache.bytes_used,
        report.cache.population_seconds
    );

    // 4. Same query, now served from the cache: same rows, no parsing.
    let after = session.execute(sql).expect("query with cache");
    println!("--- with Maxson ---");
    println!("{}", after.to_display_string());
    println!("metrics: {}", after.metrics.summary());
    assert_eq!(before.rows, after.rows, "results must be identical");
    assert_eq!(
        after.metrics.parse_calls, 0,
        "all JSONPaths served from cache"
    );
    let speedup = before.metrics.total.as_secs_f64() / after.metrics.total.as_secs_f64().max(1e-9);
    println!(
        "\nspeedup: {speedup:.1}x (parse eliminated: {:?} -> 0)",
        before.metrics.parse
    );

    let _ = std::fs::remove_dir_all(&root);
}
