//! A week of recurring sales-analytics over raw JSON, driven end-to-end:
//! the workload-intro scenario of the paper.
//!
//! Each simulated day:
//!   * new sale logs land in the warehouse at mid-day (appended file),
//!   * several users run spatially-correlated recurring queries (same
//!     table, overlapping JSONPaths: turnover, sale_count, item_name...),
//!   * at midnight Maxson re-runs its cycle — collect, predict, score,
//!     re-populate the cache, reinstall the rewriter.
//!
//! The example prints per-day totals for the cached vs uncached runs and
//! shows cache invalidation working: data appended *after* population makes
//! the cache stale until the next cycle.
//!
//! Run with:
//! ```sh
//! cargo run --release --example sales_analytics
//! ```

use maxson::mpjp::PredictorKind;
use maxson::{MaxsonPipeline, PipelineConfig};
use maxson_engine::session::Session;
use maxson_storage::file::WriteOptions;
use maxson_storage::{Cell, ColumnType, Field, Schema};
use maxson_trace::model::RecurrenceClass;
use maxson_trace::{JsonPathLocation, QueryRecord};

const ITEMS: [&str; 6] = ["apple", "watermelon", "banana", "pear", "orange", "mango"];

fn sale_row(day: i64, i: i64) -> Vec<Cell> {
    let n = day * 1_000 + i;
    let name = ITEMS[(n % ITEMS.len() as i64) as usize];
    vec![
        Cell::from(format!("{:04}", n % 3)),
        Cell::Int(20190101 + day),
        Cell::from(format!(
            r#"{{"item_id": {n}, "item_name": "{name}", "sale_count": {}, "turnover": {}, "price": {}, "category": "fruit", "store": {{"city": "c{}", "rank": {}}}}}"#,
            n % 50 + 1,
            (n % 50 + 1) * 2,
            2 + n % 5,
            n % 10,
            n % 4
        )),
    ]
}

fn daily_queries() -> Vec<(&'static str, String, Vec<&'static str>)> {
    vec![
        (
            "top-turnover",
            "select mall_id, get_json_object(sale_logs, '$.item_id') as item_id, \
             get_json_object(sale_logs, '$.item_name') as item_name, \
             get_json_object(sale_logs, '$.turnover') as turnover from mydb.sales \
             order by get_json_object(sale_logs, '$.turnover') desc limit 3"
                .to_string(),
            vec!["$.item_id", "$.item_name", "$.turnover"],
        ),
        (
            "top-sale-count",
            "select mall_id, get_json_object(sale_logs, '$.item_id') as item_id, \
             get_json_object(sale_logs, '$.item_name') as item_name, \
             get_json_object(sale_logs, '$.sale_count') as sale_count from mydb.sales \
             order by get_json_object(sale_logs, '$.sale_count') desc limit 3"
                .to_string(),
            vec!["$.item_id", "$.item_name", "$.sale_count"],
        ),
        (
            "city-revenue",
            "select get_json_object(sale_logs, '$.store.city') as city, \
             sum(get_json_object(sale_logs, '$.turnover')) as revenue from mydb.sales \
             group by get_json_object(sale_logs, '$.store.city') \
             order by revenue desc limit 5"
                .to_string(),
            vec!["$.store.city", "$.turnover"],
        ),
    ]
}

fn main() {
    let root = std::env::temp_dir().join(format!("maxson-sales-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut session = Session::open(&root).expect("open session");
    let schema = Schema::new(vec![
        Field::new("mall_id", ColumnType::Utf8),
        Field::new("date", ColumnType::Int64),
        Field::new("sale_logs", ColumnType::Utf8),
    ])
    .expect("schema");
    session
        .catalog_mut()
        .create_table("mydb", "sales", schema, 0)
        .expect("create table");

    let queries = daily_queries();
    let mut pipeline = MaxsonPipeline::new(
        &root,
        PipelineConfig {
            predictor: PredictorKind::RepeatYesterday,
            ..Default::default()
        },
    );
    let mut history: Vec<QueryRecord> = Vec::new();
    let mut qid = 0u64;
    let rows_per_day = 2_000i64;

    for day in 0..7u32 {
        // Mid-day data load (clock tick = day*10 + 5).
        let rows: Vec<Vec<Cell>> = (0..rows_per_day)
            .map(|i| sale_row(i64::from(day), i))
            .collect();
        session
            .catalog_mut()
            .table_mut("mydb", "sales")
            .expect("table")
            .append_file(
                &rows,
                WriteOptions {
                    row_group_size: 250,
                    ..Default::default()
                },
                u64::from(day) * 10 + 5,
            )
            .expect("append");

        // Users run today's recurring queries (two submissions each).
        let mut day_total = 0.0;
        let mut day_parse = 0.0;
        let mut day_hits = 0u64;
        for (name, sql, paths) in &queries {
            for user in 0..2u32 {
                let result = session.execute(sql).expect("query");
                day_total += result.metrics.total.as_secs_f64();
                day_parse += result.metrics.parse.as_secs_f64();
                day_hits += result.metrics.cache_hits;
                history.push(QueryRecord {
                    query_id: qid,
                    user_id: user,
                    day,
                    hour: 10 + user as u8,
                    recurrence: RecurrenceClass::Daily,
                    paths: paths
                        .iter()
                        .map(|p| JsonPathLocation::new("mydb", "sales", "sale_logs", *p))
                        .collect(),
                });
                qid += 1;
                let _ = name;
            }
        }
        println!(
            "day {day}: queries {:.3}s total, parse {:.3}s, cache hits {day_hits}",
            day_total, day_parse
        );

        // Midnight: run the cycle (clock tick = day*10 + 9, after today's
        // load, so tomorrow's cache is valid).
        pipeline.observe(history.iter().filter(|q| q.day == day));
        let report = pipeline
            .run_midnight_cycle(&mut session, &history, day, u64::from(day) * 10 + 9)
            .expect("cycle");
        println!(
            "  midnight: predicted {} MPJPs, cached {} paths, {} bytes",
            report.predicted,
            report.cache.cached.len(),
            report.cache.bytes_used
        );
    }

    // Final day's check: the last cycle cached all five distinct paths, so
    // a fresh query runs parse-free.
    let (_, sql, _) = &queries[2];
    let result = session.execute(sql).expect("final query");
    println!("\nfinal city-revenue run: {}", result.metrics.summary());
    println!("{}", result.to_display_string());
    assert_eq!(result.metrics.parse_calls, 0, "served entirely from cache");
    let _ = std::fs::remove_dir_all(&root);
}
