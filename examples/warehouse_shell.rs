//! An interactive warehouse shell over the Maxson stack.
//!
//! Loads (or reuses) the ten Table II workload tables, runs one Maxson
//! midnight cycle, and then reads SQL from stdin — printing results, the
//! plan, and the Read/Parse/Compute metrics for every query, so the effect
//! of the cache is visible interactively.
//!
//! Run with:
//! ```sh
//! cargo run --release --example warehouse_shell
//! ```
//!
//! Commands:
//! * any `SELECT ...;` — executed against the warehouse
//! * `\plan SELECT ...;` — show the plan without executing
//! * `\cache on` / `\cache off` — install / remove the Maxson rewriter
//! * `\tables` — list tables
//! * `\quit` — exit

use std::io::{BufRead, Write};

use maxson::mpjp::PredictorKind;
use maxson::rewriter::MaxsonScanRewriter;
use maxson::{MaxsonPipeline, PipelineConfig};
use maxson_datagen::tables::{load_workload_tables, WorkloadConfig};
use maxson_engine::session::Session;
use maxson_storage::Catalog;
use maxson_trace::model::RecurrenceClass;
use maxson_trace::{JsonPathLocation, QueryRecord};

fn main() {
    let root = std::env::var_os("MAXSON_BENCH_DATA")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("bench-data"));
    println!(
        "warehouse: {} (override with MAXSON_BENCH_DATA)",
        root.display()
    );

    // Ensure the workload tables exist.
    let queries = {
        let mut catalog = Catalog::open(&root).expect("open warehouse");
        load_workload_tables(&mut catalog, &WorkloadConfig::default()).expect("load tables")
    };
    let mut session = Session::open(&root).expect("open session");

    // Run one midnight cycle so `\cache on` has something to serve.
    let history: Vec<QueryRecord> = (0..14u32)
        .flat_map(|day| {
            queries.iter().enumerate().flat_map(move |(qi, q)| {
                let paths: Vec<JsonPathLocation> = q
                    .paths
                    .iter()
                    .map(|p| {
                        JsonPathLocation::new(
                            q.database.clone(),
                            q.table.clone(),
                            "payload",
                            p.clone(),
                        )
                    })
                    .collect();
                (0..2u32).map(move |user| QueryRecord {
                    query_id: u64::from(day) * 100 + qi as u64 * 2 + u64::from(user),
                    user_id: qi as u32 * 2 + user,
                    day,
                    hour: 9,
                    recurrence: RecurrenceClass::Daily,
                    paths: paths.clone(),
                })
            })
        })
        .collect();
    let mut pipeline = MaxsonPipeline::new(
        &root,
        PipelineConfig {
            predictor: PredictorKind::RepeatYesterday,
            ..Default::default()
        },
    );
    pipeline.observe(history.iter());
    let report = pipeline
        .run_midnight_cycle(&mut session, &history, 13, 100)
        .expect("midnight cycle");
    println!(
        "cache populated: {} paths, {} bytes. Try:\n  select id, get_json_object(payload, '$.f0') as f0 from mydb.q1 limit 5;\n  \\cache off  (then rerun and compare parse time)\n",
        report.cache.cached.len(),
        report.cache.bytes_used
    );

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    print!("maxson> ");
    std::io::stdout().flush().ok();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        match line {
            "" => {}
            "\\quit" | "\\q" | "exit" => break,
            "\\tables" => {
                for (db, t) in session.catalog().list_tables() {
                    println!("  {db}.{t}");
                }
            }
            "\\cache on" => match MaxsonScanRewriter::open(&root) {
                Ok(rw) => {
                    session.set_scan_rewriter(Some(Box::new(rw)));
                    println!("Maxson rewriter installed");
                }
                Err(e) => println!("error: {e}"),
            },
            "\\cache off" => {
                session.set_scan_rewriter(None);
                println!("Maxson rewriter removed");
            }
            other => {
                buffer.push_str(other);
                if !buffer.trim_end().ends_with(';') {
                    buffer.push(' ');
                    print!("     -> ");
                    std::io::stdout().flush().ok();
                    continue;
                }
                let sql = buffer.trim_end().trim_end_matches(';').to_string();
                buffer.clear();
                if let Some(rest) = sql.strip_prefix("\\plan ") {
                    match session.plan(rest) {
                        Ok((plan, took, _)) => {
                            println!("{}", plan.display());
                            println!("(planned in {took:?})");
                        }
                        Err(e) => println!("error: {e}"),
                    }
                } else {
                    match session.execute(&sql) {
                        Ok(result) => {
                            let show = result.rows.len().min(20);
                            println!(
                                "{}",
                                maxson_engine::QueryResult {
                                    columns: result.columns.clone(),
                                    rows: result.rows[..show].to_vec(),
                                    metrics: result.metrics.clone(),
                                    plan_display: String::new(),
                                    epoch: result.epoch,
                                }
                                .to_display_string()
                            );
                            if result.rows.len() > show {
                                println!("... ({} rows total)", result.rows.len());
                            }
                            println!("{}", result.metrics.summary());
                        }
                        Err(e) => println!("error: {e}"),
                    }
                }
            }
        }
        print!("maxson> ");
        std::io::stdout().flush().ok();
    }
    println!("bye");
}
