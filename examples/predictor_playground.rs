//! Predictor playground: synthesize an Alibaba-style trace, train every
//! model class, and inspect precision/recall/F1 plus a few decoded label
//! sequences — a miniature of the paper's Tables III and IV.
//!
//! Run with:
//! ```sh
//! cargo run --release --example predictor_playground
//! ```

use maxson_predictor::crf::LstmCrf;
use maxson_predictor::features::FeatureConfig;
use maxson_predictor::linear::{LinearConfig, LinearModel, Loss};
use maxson_predictor::lstm::{LstmConfig, LstmLabeler};
use maxson_predictor::mlp::{MlpClassifier, MlpConfig};
use maxson_predictor::{build_dataset, evaluate, MpjpModel};
use maxson_trace::analysis::{recurring_fraction, traffic_share_of_top};
use maxson_trace::{JsonPathCollector, SynthConfig, TraceSynthesizer};

fn main() {
    // 1. Synthesize the workload and show its calibration.
    let trace = TraceSynthesizer::new(SynthConfig::default()).generate();
    println!(
        "trace: {} queries over {} paths; recurring {:.0}%, top-27% path traffic share {:.0}%",
        trace.queries.len(),
        trace.universe.len(),
        recurring_fraction(&trace.queries) * 100.0,
        traffic_share_of_top(&trace.queries, 0.27) * 100.0
    );

    // 2. Build the MPJP dataset.
    let mut collector = JsonPathCollector::new();
    collector.observe_all(trace.queries.iter());
    let dataset = build_dataset(&collector, FeatureConfig::default());
    let split = dataset.split();
    println!(
        "dataset: {} examples, {:.0}% positive, split {}/{}/{}\n",
        dataset.examples.len(),
        dataset.positive_fraction() * 100.0,
        split.train.len(),
        split.validation.len(),
        split.test.len()
    );

    // 3. Train and evaluate every model class.
    println!(
        "{:>14}  {:>9}  {:>7}  {:>7}",
        "model", "precision", "recall", "F1"
    );
    let lr = LinearModel::train(&split.train, Loss::Logistic, LinearConfig::default());
    let m = evaluate(&lr, &split.test);
    println!(
        "{:>14}  {:>9.3}  {:>7.3}  {:>7.3}",
        lr.name(),
        m.precision(),
        m.recall(),
        m.f1()
    );

    let svm = LinearModel::train(&split.train, Loss::Hinge, LinearConfig::default());
    let m = evaluate(&svm, &split.test);
    println!(
        "{:>14}  {:>9.3}  {:>7.3}  {:>7.3}",
        svm.name(),
        m.precision(),
        m.recall(),
        m.f1()
    );

    let mlp = MlpClassifier::train(&split.train, MlpConfig::default());
    let m = evaluate(&mlp, &split.test);
    println!(
        "{:>14}  {:>9.3}  {:>7.3}  {:>7.3}",
        mlp.name(),
        m.precision(),
        m.recall(),
        m.f1()
    );

    let lstm = LstmLabeler::train(&split.train, LstmConfig::default());
    let m = evaluate(&lstm, &split.test);
    println!(
        "{:>14}  {:>9.3}  {:>7.3}  {:>7.3}",
        lstm.name(),
        m.precision(),
        m.recall(),
        m.f1()
    );

    let hybrid = LstmCrf::train(&split.train, LstmConfig::default());
    let m = evaluate(&hybrid, &split.test);
    println!(
        "{:>14}  {:>9.3}  {:>7.3}  {:>7.3}",
        hybrid.name(),
        m.precision(),
        m.recall(),
        m.f1()
    );

    // 4. Show what the CRF layer does: a few test sequences where Viterbi
    //    smoothing changes the raw LSTM decision.
    println!("\nsequences where the CRF layer overrides the LSTM (path, day, labels):");
    let mut shown = 0;
    for ex in &split.test {
        let raw: Vec<bool> = hybrid
            .lstm
            .step_probabilities(ex)
            .iter()
            .map(|&p| p > 0.5)
            .collect();
        let decoded = hybrid.decode(ex);
        if raw != decoded && shown < 5 {
            println!(
                "  {} day {}: gold {}  lstm {}  crf {}",
                ex.location,
                ex.day,
                fmt_labels(&ex.labels),
                fmt_labels(&raw),
                fmt_labels(&decoded)
            );
            shown += 1;
        }
    }
    if shown == 0 {
        println!("  (none in this test split — the LSTM already matches the chain)");
    }
}

fn fmt_labels(labels: &[bool]) -> String {
    labels.iter().map(|&b| if b { '1' } else { '0' }).collect()
}
