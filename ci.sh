#!/usr/bin/env bash
# Tier-1 gate, runnable from a cold cache with no network: the workspace
# has zero external registry dependencies (see "Hermetic builds" in
# README.md), so everything below must pass with --offline.
set -euo pipefail
cd "$(dirname "$0")"

cargo fmt --check
cargo build --release --offline

# The whole suite runs twice: once on the serial reference path and once
# split-parallel, so every test doubles as a differential check. Note the
# root Cargo.toml is both a workspace and a package, so bare `cargo test`
# would only run the root integration tests; --workspace covers the crates.
MAXSON_THREADS=1 cargo test -q --offline --workspace
MAXSON_THREADS=4 cargo test -q --offline --workspace

# And twice more across the shared-parse toggle, so every test also checks
# the naive parse-per-call path against intra-query shared parsing.
MAXSON_SHARED_PARSE=0 cargo test -q --offline --workspace
MAXSON_SHARED_PARSE=1 cargo test -q --offline --workspace

# Reuse-cache matrix: the differential suite proves cache on/off is
# byte-identical whatever the session default, so run it under both env
# settings (the tests also pin the cache explicitly per session, making
# each run meaningful regardless of the inherited default).
MAXSON_RESULT_CACHE=0 cargo test -q --offline --test reuse_differential
MAXSON_RESULT_CACHE=1 cargo test -q --offline --test reuse_differential

# The three-parser differential suite once more with the tape parser as
# the session default, covering the MAXSON_PARSER env-resolution path in
# Session::open (the suite's env test asserts the opened session actually
# runs tape). Only this binary runs under the override: its reference
# sessions pin Jackson explicitly, while e.g. the EXPLAIN ANALYZE goldens
# assume the Jackson default.
MAXSON_PARSER=tape cargo test -q --offline --test tape_differential

# Structural-kernel + mmap matrix: the kernel and tape differential suites
# under the scalar reference tier and the dispatched (auto) tier, crossed
# with part files copied (MAXSON_MMAP=0) and memory-mapped (=1). Results
# must be byte-identical in every cell — both knobs are pure accelerations.
for simd in scalar auto; do
  for mmap in 0 1; do
    MAXSON_SIMD=$simd MAXSON_MMAP=$mmap \
      cargo test -q --offline --test kernel_differential --test tape_differential
  done
done

# Smoke-run the scaling benchmark (fast mode: 1 run per point); it asserts
# rows are byte-identical across thread counts before reporting walls.
MAXSON_BENCH_FAST=1 cargo run --release --offline -p maxson-bench --bin fig_scaling

# Smoke-run the parser benchmark (fast mode); it asserts the shared-parse
# accounting invariant docs_parsed <= parse_calls on every query, that the
# tape series parses exactly as many documents as the Jackson baseline,
# and that nodes_skipped is positive on tape runs and zero elsewhere.
MAXSON_BENCH_FAST=1 cargo run --release --offline -p maxson-bench --bin fig15_parsers

# Smoke-run the zero-copy scan benchmark (fast mode); it reports scan-only,
# scan+filter, and scan+agg rows/s on the batched columnar pipeline and the
# cells_materialized / batch_rows_skipped work counters.
MAXSON_BENCH_FAST=1 cargo run --release --offline -p maxson-bench --bin fig_scan_throughput

# Tracing smoke: runs a fig12 query untraced and traced, fails on any
# row/counter drift, and validates the exported Chrome trace JSON
# (well-formed, >0 spans, nested parents, named thread tracks).
MAXSON_BENCH_FAST=1 MAXSON_THREADS=4 cargo run --release --offline -p maxson-bench --bin trace_smoke

# Telemetry smoke: replays the golden workload against a fresh metric
# registry with a query log installed; asserts registry counters settle
# exactly to the ExecMetrics sums, the Prometheus exposition is
# well-formed and deterministic, plan fingerprints are stable across
# replays, and the server's STATS/METRICS opcodes round-trip.
cargo run --release --offline -p maxson-bench --bin telemetry_smoke

# Telemetry report: skewed golden-workload replay; asserts the streaming
# workload sketch's hot-path ranking and estimates exactly match per-path
# counts accumulated from ExecMetrics (lossless regime: distinct paths
# fit in the sketch's 128 slots).
cargo run --release --offline -p maxson-bench --bin fig_telemetry

# Server smoke: starts the TCP query server over a throwaway warehouse,
# replays queries from 8 concurrent clients (results checked against a
# serial reference), then shuts down cleanly and proves no thread leaked.
cargo run --release --offline -p maxson-server --bin server_smoke

# Serving smoke (fast mode): multi-client replay through the server after a
# midnight cycle; asserts byte-identical results, zero footer-cache misses
# in steady state, and reports QPS/p99 per client count.
MAXSON_BENCH_FAST=1 cargo run --release --offline -p maxson-bench --bin fig_serving

# Reuse-cache smoke (fast mode): repeat-heavy / Zipf / no-repeat mixes
# through the server with the reuse cache on; asserts hit p50 >= 5x below
# cold p50, byte-identical responses, bytes within budget, and zero stale
# hits across a mid-stream epoch swap.
MAXSON_BENCH_FAST=1 cargo run --release --offline -p maxson-bench --bin fig_reuse
