#!/usr/bin/env bash
# Tier-1 gate, runnable from a cold cache with no network: the workspace
# has zero external registry dependencies (see "Hermetic builds" in
# README.md), so everything below must pass with --offline.
set -euo pipefail
cd "$(dirname "$0")"

cargo fmt --check
cargo build --release --offline
cargo test -q --offline
