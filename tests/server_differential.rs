//! Differential tests proving the query server returns byte-identical
//! results to serial in-process execution.
//!
//! For every cell of the {1, 4 engine threads} x {Jackson, Mison, Tape}
//! matrix: a serial single-`Session` run of the golden rewriter queries
//! (bench-data warehouse) and a NoBench workload (temp warehouse) produces
//! the reference rendering; then 8 concurrent clients replay the same
//! query set against one server over the same warehouse, each starting at
//! a different offset so in-flight queries genuinely interleave. Every
//! served result must render byte-identically to the serial reference,
//! and row counts must match cell by cell.

use std::path::PathBuf;
use std::sync::Arc;

use maxson_datagen::NobenchGenerator;
use maxson_engine::{JsonParserKind, Session};
use maxson_server::{Client, Server, ServerConfig};
use maxson_storage::file::WriteOptions;
use maxson_storage::{Cell, ColumnType, Field, Schema};

const CLIENTS: usize = 8;
const THREAD_COUNTS: [usize; 2] = [1, 4];
const PARSERS: [JsonParserKind; 3] = [
    JsonParserKind::Jackson,
    JsonParserKind::Mison,
    JsonParserKind::Tape,
];

fn bench_data_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("bench-data")
}

fn temp_root(name: &str) -> PathBuf {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .subsec_nanos();
    std::env::temp_dir().join(format!(
        "maxson-srvdiff-{}-{nanos}-{name}",
        std::process::id()
    ))
}

/// The golden rewriter queries from PR 1 (see tests/rewriter_golden.rs).
const GOLDEN_QUERIES: [&str; 4] = [
    "select get_json_object(payload, '$.f0') as f0, \
     get_json_object(payload, '$.f1') as f1 from mydb.q1",
    "select get_json_object(payload, '$.f0') as f0, \
     get_json_object(payload, '$.f10') as f10 from mydb.q2",
    "select get_json_object(payload, '$.f0') as f0 \
     from mydb.q1 where get_json_object(payload, '$.f0') > 900",
    "select get_json_object(payload, '$.f12') as f12 from mydb.q2",
];

const NOBENCH_QUERIES: [&str; 5] = [
    "select get_json_object(payload, '$.str1') as s1, \
     get_json_object(payload, '$.nested_obj.num') as nn from nb.docs",
    "select id, get_json_object(payload, '$.num') as num from nb.docs \
     where get_json_object(payload, '$.bool') = 'true' and id < 200",
    "select count(*), sum(get_json_object(payload, '$.num')), \
     avg(get_json_object(payload, '$.num')) from nb.docs",
    "select get_json_object(payload, '$.str2') as grp, count(*), \
     max(get_json_object(payload, '$.num')) from nb.docs \
     group by get_json_object(payload, '$.str2')",
    "select id from nb.docs order by id desc limit 7",
];

/// Build a NoBench table: `rows` seeded JSON documents over `files` splits.
fn nobench_table(name: &str, rows: u64, files: u64) -> PathBuf {
    let root = temp_root(name);
    let mut session = Session::open(&root).unwrap();
    let schema = Schema::new(vec![
        Field::new("id", ColumnType::Int64),
        Field::new("payload", ColumnType::Utf8),
    ])
    .unwrap();
    let mut catalog = session.catalog_mut();
    let table = catalog.create_table("nb", "docs", schema, 0).unwrap();
    let mut generator = NobenchGenerator::new(42);
    let per_file = rows / files;
    for f in 0..files {
        let rows: Vec<Vec<Cell>> = (f * per_file..(f + 1) * per_file)
            .map(|i| vec![Cell::Int(i as i64), Cell::from(generator.record_text(i))])
            .collect();
        table
            .append_file(
                &rows,
                WriteOptions {
                    row_group_size: 16,
                    ..Default::default()
                },
                1,
            )
            .unwrap();
    }
    drop(catalog);
    root
}

/// Serial reference renderings for `queries` under one parser/thread combo.
fn serial_reference(
    root: &PathBuf,
    queries: &[&str],
    parser: JsonParserKind,
    threads: usize,
) -> Vec<String> {
    let mut session = Session::open(root).unwrap();
    session.set_parser(parser);
    session.set_threads(Some(threads));
    queries
        .iter()
        .map(|sql| {
            session
                .execute(sql)
                .unwrap_or_else(|e| panic!("serial reference failed for {sql}: {e}"))
                .to_display_string()
        })
        .collect()
}

/// Serve `root` and have `CLIENTS` concurrent clients replay `queries`,
/// asserting every served rendering equals the serial reference.
fn assert_served_identical(
    root: &PathBuf,
    queries: &'static [&'static str],
    parser: JsonParserKind,
    threads: usize,
    label: &str,
) {
    let reference = Arc::new(serial_reference(root, queries, parser, threads));

    let mut template = Session::open(root).unwrap();
    template.set_parser(parser);
    let mut server = Server::serve(
        template,
        "127.0.0.1:0",
        ServerConfig {
            threads: Some(threads),
            permits: Some(4),
            result_cache_mb: None,
        },
    )
    .unwrap();
    let addr = server.addr();

    let label: Arc<str> = Arc::from(format!("{label}/{parser:?}/{threads}t"));
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let reference = reference.clone();
            let label = label.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                // Rotate the starting query per client so different query
                // shapes overlap in flight.
                for k in 0..queries.len() {
                    let q = (c + k) % queries.len();
                    let result = client
                        .query(queries[q])
                        .unwrap_or_else(|e| panic!("[{label}] client {c} failed {q}: {e}"));
                    assert_eq!(
                        result.to_display_string(),
                        reference[q],
                        "[{label}] client {c} diverged from serial reference on query {q}"
                    );
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client worker panicked");
    }

    // The load really went through the server, and nothing errored.
    let stats = Client::connect(addr).unwrap().stats().unwrap();
    assert_eq!(
        stats.queries_ok as usize,
        CLIENTS * queries.len(),
        "[{label}] lost queries: {stats:?}"
    );
    assert_eq!(stats.queries_err, 0, "[{label}] spurious errors: {stats:?}");
    server.stop();
}

#[test]
fn golden_queries_served_identical_across_matrix() {
    let root = bench_data_root();
    for parser in PARSERS {
        for threads in THREAD_COUNTS {
            assert_served_identical(&root, &GOLDEN_QUERIES, parser, threads, "golden");
        }
    }
}

#[test]
fn nobench_workload_served_identical_across_matrix() {
    let root = nobench_table("nobench", 240, 4);
    for parser in PARSERS {
        for threads in THREAD_COUNTS {
            assert_served_identical(&root, &NOBENCH_QUERIES, parser, threads, "nobench");
        }
    }
    std::fs::remove_dir_all(&root).ok();
}

/// The metadata cache actually carries the concurrent load: once one query
/// has warmed the footers, a storm of concurrent clients adds hits only.
/// (Cold misses are not bounded by the file count — two connection threads
/// can race on the same cold footer and each record a miss — so the
/// invariant is phrased as a delta over a warmed cache.)
#[test]
fn served_load_hits_the_shared_metadata_cache() {
    let root = nobench_table("metacache", 120, 3);
    let mut server = Server::start(&root, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.addr();

    // Serial warmup: one pass over the table pulls every footer in.
    let mut warm = Client::connect(addr).unwrap();
    warm.query(NOBENCH_QUERIES[1]).expect("warmup query");
    let before = warm.stats().unwrap();
    assert!(before.meta_cache_misses > 0, "warmup never hit storage");

    let workers: Vec<_> = (0..CLIENTS)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for _ in 0..4 {
                    client.query(NOBENCH_QUERIES[1]).expect("query");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let stats = warm.stats().unwrap();
    assert!(
        stats.meta_cache_hits > before.meta_cache_hits,
        "concurrent load never touched the footer cache: {stats:?}"
    );
    assert_eq!(
        stats.meta_cache_misses, before.meta_cache_misses,
        "footer fetched from storage after warmup: {stats:?}"
    );
    server.stop();
    std::fs::remove_dir_all(&root).ok();
}
