//! Metric-registry contracts: concurrent charges settle exactly, live
//! snapshots never run backwards, and the text exposition format is
//! pinned byte-for-byte by a golden.
//!
//! The concurrency check is a seed-replayable property test (replay a
//! failure with `MAXSON_TESTKIT_SEED`): each scenario derives one
//! deterministic op stream per thread from the scenario seed, runs the
//! streams concurrently at 1, 4, and 8 threads, and asserts that every
//! counter equals the serially-replayed expectation while a sampler
//! thread observes only monotonically non-decreasing values.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use maxson_engine::Registry;
use maxson_testkit::prop::{check, Config, Gen};
use maxson_testkit::rng::Rng;

/// The fixed series the op streams charge.
const COUNTERS: [(&str, &[(&str, &str)]); 4] = [
    ("reg_ops_total", &[("kind", "read")]),
    ("reg_ops_total", &[("kind", "write")]),
    ("reg_bytes_total", &[]),
    ("reg_retries_total", &[("stage", "parse")]),
];

#[derive(Debug, Clone)]
struct Scenario {
    seed: u64,
    ops_per_thread: usize,
}

fn scenario_gen() -> Gen<Scenario> {
    Gen::tuple2(Gen::u64_any(), Gen::usize_in(40..=160)).map(|(seed, ops_per_thread)| Scenario {
        seed,
        ops_per_thread,
    })
}

/// One thread's deterministic op stream: `(counter index, amount)` pairs
/// plus histogram observations every 8th op.
fn op_stream(seed: u64, thread: u64, ops: usize) -> Vec<(usize, u64)> {
    let mut rng = Rng::seed_from_u64(seed ^ (thread.wrapping_mul(0x9E3779B97F4A7C15)));
    (0..ops)
        .map(|_| {
            (
                rng.gen_range(0..=COUNTERS.len() - 1),
                rng.gen_range(1..=5u64),
            )
        })
        .collect()
}

fn run_scenario(s: &Scenario, threads: u64) -> Result<(), String> {
    let registry = Arc::new(Registry::new());

    // Serial expectation, independent of interleaving.
    let mut expected = [0u64; COUNTERS.len()];
    let mut expected_observations = 0u64;
    for t in 0..threads {
        for (i, (idx, amount)) in op_stream(s.seed, t, s.ops_per_thread).iter().enumerate() {
            expected[*idx] += amount;
            if i % 8 == 0 {
                expected_observations += 1;
            }
        }
    }

    // Sampler thread: watches the registry while writers hammer it.
    let done = Arc::new(AtomicBool::new(false));
    let sampler = {
        let registry = Arc::clone(&registry);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut snapshots = Vec::new();
            while !done.load(Ordering::Acquire) {
                snapshots.push(registry.sample());
                std::thread::yield_now();
            }
            snapshots.push(registry.sample());
            snapshots
        })
    };

    let writers: Vec<_> = (0..threads)
        .map(|t| {
            let registry = Arc::clone(&registry);
            let stream = op_stream(s.seed, t, s.ops_per_thread);
            std::thread::spawn(move || {
                for (i, (idx, amount)) in stream.into_iter().enumerate() {
                    let (name, labels) = COUNTERS[idx];
                    registry.counter(name, labels).add(amount);
                    if i % 8 == 0 {
                        registry
                            .histogram("reg_wall_seconds", &[])
                            .observe(Duration::from_micros(amount * 10));
                    }
                }
            })
        })
        .collect();
    for w in writers {
        w.join().map_err(|_| "writer panicked".to_string())?;
    }
    done.store(true, Ordering::Release);
    let snapshots = sampler.join().map_err(|_| "sampler panicked".to_string())?;

    // Settlement: no lost updates, no phantom ones.
    for (i, (name, labels)) in COUNTERS.iter().enumerate() {
        let got = registry.counter_value(name, labels);
        if got != Some(expected[i]) {
            return Err(format!(
                "{name}{labels:?} settled at {got:?}, expected {}",
                expected[i]
            ));
        }
    }
    let hist = registry
        .histogram_snapshot("reg_wall_seconds", &[])
        .ok_or("histogram missing")?;
    if hist.count() != expected_observations {
        return Err(format!(
            "histogram count {} != expected {expected_observations}",
            hist.count()
        ));
    }

    // Monotonicity: counters and histogram counts never run backwards
    // across successive live snapshots.
    let mut last: std::collections::BTreeMap<String, u64> = Default::default();
    for (si, snap) in snapshots.iter().enumerate() {
        for (series, value) in snap {
            if let Some(prev) = last.get(series) {
                if value < prev {
                    return Err(format!(
                        "snapshot {si}: series {series} ran backwards ({prev} -> {value})"
                    ));
                }
            }
            last.insert(series.clone(), *value);
        }
    }
    Ok(())
}

#[test]
fn concurrent_charges_settle_and_snapshots_are_monotone() {
    let cfg = Config::with_cases(12);
    check(
        "metrics_registry_settlement",
        &cfg,
        &scenario_gen(),
        |scenario| {
            for threads in [1u64, 4, 8] {
                run_scenario(scenario, threads).map_err(|e| format!("{threads} threads: {e}"))?;
            }
            Ok(())
        },
    );
}

#[test]
fn type_conflicts_yield_detached_handles_not_panics() {
    let registry = Registry::new();
    registry.counter("mixed_series", &[]).add(2);
    // Same key, different type: the handle must be detached (its charges
    // invisible) and the registered counter untouched.
    registry.gauge("mixed_series", &[]).set(99);
    registry
        .histogram("mixed_series", &[])
        .observe(Duration::from_millis(1));
    assert_eq!(registry.counter_value("mixed_series", &[]), Some(2));
    assert!(registry.expose().contains("mixed_series 2"));
}

#[test]
fn exposition_matches_golden() {
    let registry = Registry::new();
    registry
        .counter("app_requests_total", &[("route", "/q"), ("method", "GET")])
        .add(3);
    registry
        .counter("app_requests_total", &[("route", "/s")])
        .inc();
    registry.gauge("app_depth", &[]).set(7);
    let wall = registry.histogram("app_wall_seconds", &[]);
    wall.observe(Duration::from_micros(100));
    wall.observe(Duration::from_micros(1000));
    wall.observe(Duration::from_micros(1000));
    wall.observe(Duration::from_micros(5000));
    registry
        .counter("esc_total", &[("msg", "a\"b\\c\nd")])
        .inc();
    registry.record_path("db.t", "$.a", 5);
    registry.record_path("db.t", "$.b", 2);

    let golden = concat!(
        "# TYPE app_depth gauge\n",
        "app_depth 7\n",
        "# TYPE app_requests_total counter\n",
        "app_requests_total{method=\"GET\",route=\"/q\"} 3\n",
        "app_requests_total{route=\"/s\"} 1\n",
        "# TYPE app_wall_seconds histogram\n",
        "app_wall_seconds_bucket{le=\"0.000128\"} 1\n",
        "app_wall_seconds_bucket{le=\"0.001024\"} 3\n",
        "app_wall_seconds_bucket{le=\"0.008192\"} 4\n",
        "app_wall_seconds_bucket{le=\"+Inf\"} 4\n",
        "app_wall_seconds_sum 0.0071\n",
        "app_wall_seconds_count 4\n",
        "# TYPE esc_total counter\n",
        "esc_total{msg=\"a\\\"b\\\\c\\nd\"} 1\n",
        "# TYPE maxson_hot_path_extracts gauge\n",
        "maxson_hot_path_extracts{path=\"$.a\",table=\"db.t\"} 5\n",
        "maxson_hot_path_extracts{path=\"$.b\",table=\"db.t\"} 2\n",
    );
    assert_eq!(registry.expose(), golden);
}
