//! Allocation regression for the zero-copy scan+filter hot loop.
//!
//! The zero-copy pipeline (PR: shared-buffer `Arc<str>` cells, columnar
//! batches with late materialization, allocation-free group keys) exists to
//! take per-row heap traffic out of the scan phase. This test pins that
//! property with a counting global allocator (`maxson-testkit`'s
//! `count-alloc` feature):
//!
//! 1. the engine's scan+filter allocations-per-row must stay under a locked
//!    absolute ceiling, and
//! 2. a seed-style consumption loop — deep-copying every string cell and
//!    building one fresh `Vec<Cell>` per row before filtering, exactly what
//!    `ColumnData::get`/`scan_split` did before this change — must cost at
//!    least 5x more allocations per row than the engine's whole execution
//!    does now.
//!
//! The workload uses a dictionary-encodable payload column (few distinct
//! documents) and a selective filter, the shape where late materialization
//! and shared buffers pay: the old path paid ~3 allocations per row
//! (decode-copy, get-clone, row Vec) regardless of selectivity; the new
//! path shares one buffer per distinct document and materializes only the
//! filter column for rejected rows.

use maxson_engine::session::Session;
use maxson_storage::file::WriteOptions;
use maxson_storage::{Cell, ColumnType, Field, Schema};
use maxson_testkit::alloc::{allocation_count, CountingAllocator};
use std::path::PathBuf;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Locked ceiling for the engine's whole-query allocations per scanned row
/// on the scan+filter shape below (measured ~0.1–0.3 across platforms;
/// headroom for allocator/stdlib drift, still far under the seed path's
/// ~3 per row).
const ENGINE_ALLOCS_PER_ROW_CEILING: f64 = 1.0;

/// The seed-style loop must cost at least this many times the engine's
/// per-row allocations.
const MIN_IMPROVEMENT: f64 = 5.0;

const ROWS: i64 = 4096;
/// Filter keeps 64 of 4096 rows (~1.6%), the selective case Sparser and
/// late materialization target.
const KEEP_FROM: i64 = ROWS - 64;

fn temp_root(name: &str) -> PathBuf {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .subsec_nanos();
    std::env::temp_dir().join(format!(
        "maxson-alloc-{}-{nanos}-{name}",
        std::process::id()
    ))
}

/// A table whose payload column dictionary-encodes (8 distinct documents),
/// so decoded rows share buffers instead of copying them.
fn build_table(root: &PathBuf) -> Session {
    let mut session = Session::open(root).unwrap();
    let schema = Schema::new(vec![
        Field::new("id", ColumnType::Int64),
        Field::new("payload", ColumnType::Utf8),
    ])
    .unwrap();
    let mut catalog = session.catalog_mut();
    let table = catalog.create_table("db", "t", schema, 0).unwrap();
    let rows: Vec<Vec<Cell>> = (0..ROWS)
        .map(|i| {
            vec![
                Cell::Int(i),
                Cell::from(format!(
                    r#"{{"group": {}, "name": "payload-group-{}", "weight": {}}}"#,
                    i % 8,
                    i % 8,
                    (i % 8) * 100
                )),
            ]
        })
        .collect();
    table
        .append_file(&rows, WriteOptions::default(), 1)
        .unwrap();
    drop(catalog);
    session
}

#[test]
fn scan_filter_hot_loop_allocations_per_row() {
    let root = temp_root("scanfilter");
    let mut session = build_table(&root);
    session.set_threads(Some(1));
    let sql = format!("select id, payload from db.t where id >= {KEEP_FROM}");

    // Warm up: first execution touches lazy one-time state (catalog reads,
    // file metadata) that is not per-row cost.
    let warm = session.execute(&sql).unwrap();
    assert_eq!(warm.rows.len(), (ROWS - KEEP_FROM) as usize);

    // Engine path: a whole execution, SQL parse and planning included —
    // strictly more than the hot loop, so the ceiling is conservative.
    let before = allocation_count();
    let result = session.execute(&sql).unwrap();
    let engine_allocs = allocation_count() - before;
    assert_eq!(result.rows.len(), (ROWS - KEEP_FROM) as usize);
    assert_eq!(result.metrics.rows_scanned, ROWS as u64);
    let engine_per_row = engine_allocs as f64 / ROWS as f64;

    // Seed-style consumption of the same scan: one fresh Vec<Cell> per row
    // with every string cell deep-copied (what `Cell::Str(String)` +
    // `ColumnData::get`'s clone cost before this change), filter applied
    // after materialization.
    // Scanned once outside the measured region; the seed loop below only
    // measures consumption, exactly like the engine's hot loop.
    let rows = session
        .execute("select id, payload from db.t")
        .unwrap()
        .rows;
    let before = allocation_count();
    let mut kept: Vec<Vec<Cell>> = Vec::new();
    for row in &rows {
        let materialized: Vec<Cell> = row
            .iter()
            .map(|c| match c {
                Cell::Str(s) => Cell::from(&**s), // deep copy, as the seed did
                other => other.clone(),
            })
            .collect();
        let keep = matches!(materialized[0], Cell::Int(v) if v >= KEEP_FROM);
        if keep {
            kept.push(materialized);
        }
    }
    let seed_allocs = allocation_count() - before;
    assert_eq!(kept.len(), (ROWS - KEEP_FROM) as usize);
    let seed_per_row = seed_allocs as f64 / ROWS as f64;

    eprintln!(
        "alloc_regression: engine {engine_per_row:.4} allocs/row \
         ({engine_allocs} total), seed-style {seed_per_row:.4} allocs/row \
         ({seed_allocs} total), improvement {:.1}x",
        seed_per_row / engine_per_row.max(f64::EPSILON)
    );
    assert!(
        engine_per_row <= ENGINE_ALLOCS_PER_ROW_CEILING,
        "scan+filter allocations per row regressed: {engine_per_row:.3} \
         (ceiling {ENGINE_ALLOCS_PER_ROW_CEILING}), {engine_allocs} allocs over {ROWS} rows"
    );
    assert!(
        seed_per_row >= MIN_IMPROVEMENT * engine_per_row,
        "zero-copy win eroded: seed-style loop {seed_per_row:.3} allocs/row vs \
         engine {engine_per_row:.3} allocs/row (need >= {MIN_IMPROVEMENT}x)"
    );

    std::fs::remove_dir_all(&root).ok();
}
