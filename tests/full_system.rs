//! Cross-crate integration tests: the full Maxson stack from trace
//! synthesis through prediction, caching, plan rewriting, and execution.

use maxson::mpjp::PredictorKind;
use maxson::rewriter::MaxsonScanRewriter;
use maxson::{MaxsonPipeline, OnlineLruRewriter, PipelineConfig};
use maxson_datagen::tables::{load_workload_tables, WorkloadConfig};
use maxson_engine::session::{JsonParserKind, Session};
use maxson_storage::{Catalog, Cell};
use maxson_trace::model::RecurrenceClass;
use maxson_trace::{JsonPathLocation, QueryRecord};
use std::path::PathBuf;

fn temp_root(name: &str) -> PathBuf {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .subsec_nanos();
    std::env::temp_dir().join(format!("maxson-sys-{}-{nanos}-{name}", std::process::id()))
}

/// Build the ten workload tables in a temp warehouse.
fn workload_root(name: &str) -> (PathBuf, Vec<maxson_datagen::QuerySpec>) {
    let root = temp_root(name);
    let mut catalog = Catalog::open(&root).unwrap();
    let cfg = WorkloadConfig {
        rows_per_table: 200,
        files_per_table: 2,
        row_group_size: 25,
        ..Default::default()
    };
    let queries = load_workload_tables(&mut catalog, &cfg).unwrap();
    (root, queries)
}

fn history_for(queries: &[maxson_datagen::QuerySpec], days: u32) -> Vec<QueryRecord> {
    let mut out = Vec::new();
    let mut id = 0;
    for day in 0..days {
        for (qi, q) in queries.iter().enumerate() {
            for user in 0..2u32 {
                out.push(QueryRecord {
                    query_id: id,
                    user_id: qi as u32 * 2 + user,
                    day,
                    hour: 9,
                    recurrence: RecurrenceClass::Daily,
                    paths: q
                        .paths
                        .iter()
                        .map(|p| {
                            JsonPathLocation::new(
                                q.database.clone(),
                                q.table.clone(),
                                "payload",
                                p.clone(),
                            )
                        })
                        .collect(),
                });
                id += 1;
            }
        }
    }
    out
}

#[test]
fn all_ten_workload_queries_run_uncached() {
    let (root, queries) = workload_root("uncached");
    let session = Session::open(&root).unwrap();
    for q in &queries {
        let result = session
            .execute(&q.sql)
            .unwrap_or_else(|e| panic!("{} failed: {e}", q.name));
        assert!(
            result.metrics.parse_calls > 0,
            "{} should parse JSON",
            q.name
        );
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn cached_results_match_uncached_results_for_every_query() {
    let (root, queries) = workload_root("equivalence");
    // Uncached reference results.
    let plain = Session::open(&root).unwrap();
    let reference: Vec<_> = queries
        .iter()
        .map(|q| plain.execute(&q.sql).expect("uncached run").rows)
        .collect();

    // Cache everything and rerun.
    let mut session = Session::open(&root).unwrap();
    let history = history_for(&queries, 10);
    let mut pipeline = MaxsonPipeline::new(
        &root,
        PipelineConfig {
            predictor: PredictorKind::RepeatYesterday,
            ..Default::default()
        },
    );
    pipeline.observe(history.iter());
    let report = pipeline
        .run_midnight_cycle(&mut session, &history, 8, 100)
        .unwrap();
    assert!(
        report.cache.cached.len() >= 80,
        "expected most of the 90 paths cached, got {}",
        report.cache.cached.len()
    );
    for (q, expected) in queries.iter().zip(&reference) {
        let result = session
            .execute(&q.sql)
            .unwrap_or_else(|e| panic!("{} failed cached: {e}", q.name));
        assert_eq!(
            &result.rows, expected,
            "{} rows diverged with cache",
            q.name
        );
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn cached_results_match_under_mison_parser_too() {
    let (root, queries) = workload_root("mison-equiv");
    let mut session = Session::open(&root).unwrap();
    session.set_parser_kind(JsonParserKind::Mison);
    let reference: Vec<_> = queries
        .iter()
        .take(4)
        .map(|q| session.execute(&q.sql).expect("mison run").rows)
        .collect();
    let history = history_for(&queries, 10);
    let mut pipeline = MaxsonPipeline::new(
        &root,
        PipelineConfig {
            predictor: PredictorKind::RepeatYesterday,
            ..Default::default()
        },
    );
    pipeline.observe(history.iter());
    pipeline
        .run_midnight_cycle(&mut session, &history, 8, 100)
        .unwrap();
    for (q, expected) in queries.iter().take(4).zip(&reference) {
        let result = session.execute(&q.sql).unwrap();
        assert_eq!(&result.rows, expected, "{} diverged", q.name);
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn lru_baseline_matches_maxson_results() {
    let (root, queries) = workload_root("lru-equiv");
    let plain = Session::open(&root).unwrap();
    let reference: Vec<_> = queries
        .iter()
        .take(3)
        .map(|q| plain.execute(&q.sql).expect("plain").rows)
        .collect();
    let mut session = Session::open(&root).unwrap();
    let lru = OnlineLruRewriter::open(&root, u64::MAX).unwrap();
    session.set_scan_rewriter(Some(Box::new(lru)));
    for round in 0..2 {
        for (q, expected) in queries.iter().take(3).zip(&reference) {
            let result = session.execute(&q.sql).unwrap();
            assert_eq!(&result.rows, expected, "{} round {round}", q.name);
        }
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn budget_zero_caches_nothing_and_still_works() {
    let (root, queries) = workload_root("zerobudget");
    let mut session = Session::open(&root).unwrap();
    let history = history_for(&queries, 10);
    let mut pipeline = MaxsonPipeline::new(
        &root,
        PipelineConfig {
            predictor: PredictorKind::RepeatYesterday,
            budget_bytes: 0,
            ..Default::default()
        },
    );
    pipeline.observe(history.iter());
    let report = pipeline
        .run_midnight_cycle(&mut session, &history, 8, 100)
        .unwrap();
    assert!(report.cache.cached.is_empty());
    let result = session.execute(&queries[0].sql).unwrap();
    assert!(result.metrics.parse_calls > 0);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn rewriter_reloads_registry_from_disk() {
    let (root, queries) = workload_root("reload");
    let mut session = Session::open(&root).unwrap();
    let history = history_for(&queries, 10);
    let mut pipeline = MaxsonPipeline::new(
        &root,
        PipelineConfig {
            predictor: PredictorKind::RepeatYesterday,
            ..Default::default()
        },
    );
    pipeline.observe(history.iter());
    pipeline
        .run_midnight_cycle(&mut session, &history, 8, 100)
        .unwrap();
    // Simulate a new process: fresh session + rewriter loaded from disk.
    let mut session2 = Session::open(&root).unwrap();
    let rewriter = MaxsonScanRewriter::open(&root).unwrap();
    session2.set_scan_rewriter(Some(Box::new(rewriter)));
    let q = &queries[5]; // Q6: all paths cached
    let result = session2.execute(&q.sql).unwrap();
    assert_eq!(
        result.metrics.parse_calls, 0,
        "Q6 fully cached after reload"
    );
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn repeated_cycles_are_stable() {
    let (root, queries) = workload_root("cycles");
    let mut session = Session::open(&root).unwrap();
    let history = history_for(&queries, 12);
    let mut pipeline = MaxsonPipeline::new(
        &root,
        PipelineConfig {
            predictor: PredictorKind::RepeatYesterday,
            ..Default::default()
        },
    );
    pipeline.observe(history.iter());
    let mut counts = Vec::new();
    for day in 8..11 {
        let report = pipeline
            .run_midnight_cycle(&mut session, &history, day, 100 + u64::from(day))
            .unwrap();
        counts.push(report.cache.cached.len());
        // Query works after every cycle.
        let result = session.execute(&queries[2].sql).unwrap();
        assert!(!result.columns.is_empty());
    }
    assert_eq!(counts[0], counts[1]);
    assert_eq!(counts[1], counts[2]);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn predicate_pushdown_preserves_results_on_workload_query() {
    let (root, queries) = workload_root("pushdown-equiv");
    // Q9 filters on a cached JSONPath — the pushdown showcase.
    let q9 = queries.iter().find(|q| q.name == "Q9").unwrap();
    let plain = Session::open(&root).unwrap();
    let expected = plain.execute(&q9.sql).unwrap().rows;

    let history = history_for(&queries, 10);
    for enable_pushdown in [true, false] {
        let mut session = Session::open(&root).unwrap();
        let mut pipeline = MaxsonPipeline::new(
            &root,
            PipelineConfig {
                predictor: PredictorKind::RepeatYesterday,
                enable_pushdown,
                ..Default::default()
            },
        );
        pipeline.observe(history.iter());
        pipeline
            .run_midnight_cycle(&mut session, &history, 8, 100)
            .unwrap();
        let result = session.execute(&q9.sql).unwrap();
        assert_eq!(
            result.rows, expected,
            "pushdown={enable_pushdown} changed Q9 results"
        );
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn mid_day_append_invalidates_until_next_cycle() {
    let (root, queries) = workload_root("midday");
    let mut session = Session::open(&root).unwrap();
    let history = history_for(&queries, 10);
    let mut pipeline = MaxsonPipeline::new(
        &root,
        PipelineConfig {
            predictor: PredictorKind::RepeatYesterday,
            ..Default::default()
        },
    );
    pipeline.observe(history.iter());
    pipeline
        .run_midnight_cycle(&mut session, &history, 8, 100)
        .unwrap();
    let q = queries.iter().find(|q| q.name == "Q4").unwrap();
    let cached_run = session.execute(&q.sql).unwrap();
    assert_eq!(cached_run.metrics.parse_calls, 0);

    // Mid-day: new data lands in q4's table (logical time 200 > cache 100).
    let payload = r#"{"f0": 1}"#;
    session
        .catalog_mut()
        .table_mut("mydb", "q4")
        .unwrap()
        .append_file(
            &[vec![
                Cell::Int(9999),
                Cell::Int(20190120),
                Cell::Str(payload.into()),
            ]],
            maxson_storage::file::WriteOptions::default(),
            200,
        )
        .unwrap();
    // A fresh rewriter (planning reads metadata) must refuse the stale cache.
    let rewriter = MaxsonScanRewriter::open(&root).unwrap();
    session.set_scan_rewriter(Some(Box::new(rewriter)));
    let stale_run = session.execute(&q.sql).unwrap();
    assert!(
        stale_run.metrics.parse_calls > 0,
        "stale cache must not serve"
    );

    // Next midnight cycle re-caches; served again.
    pipeline
        .run_midnight_cycle(&mut session, &history, 8, 300)
        .unwrap();
    let fresh_run = session.execute(&q.sql).unwrap();
    assert_eq!(fresh_run.metrics.parse_calls, 0);
    std::fs::remove_dir_all(&root).ok();
}
