//! The paper's §VI extension claim, demonstrated end to end: XML payloads
//! converted into the JSON value model at load time flow through the whole
//! Maxson machinery — JSONPath extraction, MPJP prediction, caching, plan
//! rewriting — unchanged.

use maxson::mpjp::PredictorKind;
use maxson::{MaxsonPipeline, PipelineConfig};
use maxson_engine::session::Session;
use maxson_json::xml::xml_to_json;
use maxson_storage::file::WriteOptions;
use maxson_storage::{Cell, ColumnType, Field, Schema};
use maxson_trace::model::RecurrenceClass;
use maxson_trace::{JsonPathLocation, QueryRecord};
use std::path::PathBuf;

fn temp_root(name: &str) -> PathBuf {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .subsec_nanos();
    std::env::temp_dir().join(format!("maxson-xml-{}-{nanos}-{name}", std::process::id()))
}

const ITEMS: [&str; 4] = ["apple", "pear", "mango", "plum"];

fn xml_record(i: i64) -> String {
    format!(
        r#"<order id="{i}" region="r{}"><item sku="S{}">{}</item><turnover>{}</turnover></order>"#,
        i % 3,
        i % 7,
        ITEMS[(i % 4) as usize],
        i * 3
    )
}

#[test]
fn xml_payloads_cache_and_accelerate() {
    let root = temp_root("cache");
    let mut session = Session::open(&root).unwrap();
    let schema = Schema::new(vec![
        Field::new("id", ColumnType::Int64),
        Field::new("payload", ColumnType::Utf8),
    ])
    .unwrap();
    let mut catalog = session.catalog_mut();
    let table = catalog.create_table("xmldb", "orders", schema, 0).unwrap();
    // Load-time conversion: XML in, JSON value model out.
    let rows: Vec<Vec<Cell>> = (0..60)
        .map(|i| {
            vec![
                Cell::Int(i),
                Cell::from(xml_to_json(&xml_record(i)).expect("valid XML")),
            ]
        })
        .collect();
    table
        .append_file(
            &rows,
            WriteOptions {
                row_group_size: 10,
                ..Default::default()
            },
            1,
        )
        .unwrap();
    drop(catalog);

    // The recurring query extracts XML-derived fields, including an
    // attribute path.
    let sql = "select get_json_object(payload, '$.order.item.#text') as item, \
               sum(get_json_object(payload, '$.order.turnover')) as revenue \
               from xmldb.orders group by get_json_object(payload, '$.order.item.#text') \
               order by item";
    let before = session.execute(sql).unwrap();
    assert_eq!(before.rows.len(), 4);
    assert_eq!(before.rows[0][0], Cell::Str("apple".into()));
    assert!(before.metrics.parse_calls > 0);

    // Midnight cycle over a daily history of this query.
    let paths = ["$.order.item.#text", "$.order.turnover"];
    let history: Vec<QueryRecord> = (0..10u32)
        .flat_map(|day| {
            (0..2u32).map(move |user| QueryRecord {
                query_id: u64::from(day * 2 + user),
                user_id: user,
                day,
                hour: 9,
                recurrence: RecurrenceClass::Daily,
                paths: paths
                    .iter()
                    .map(|p| JsonPathLocation::new("xmldb", "orders", "payload", *p))
                    .collect(),
            })
        })
        .collect();
    let mut pipeline = MaxsonPipeline::new(
        &root,
        PipelineConfig {
            predictor: PredictorKind::RepeatYesterday,
            ..Default::default()
        },
    );
    pipeline.observe(history.iter());
    let report = pipeline
        .run_midnight_cycle(&mut session, &history, 8, 100)
        .unwrap();
    assert_eq!(report.cache.cached.len(), 2);

    // Same results, zero parses.
    let after = session.execute(sql).unwrap();
    assert_eq!(after.rows, before.rows);
    assert_eq!(after.metrics.parse_calls, 0);
    assert!(after.metrics.cache_hits > 0);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn attribute_paths_are_cacheable_too() {
    let root = temp_root("attrs");
    let mut session = Session::open(&root).unwrap();
    let schema = Schema::new(vec![Field::new("payload", ColumnType::Utf8)]).unwrap();
    let mut catalog = session.catalog_mut();
    let table = catalog.create_table("xmldb", "t", schema, 0).unwrap();
    let rows: Vec<Vec<Cell>> = (0..20)
        .map(|i| vec![Cell::from(xml_to_json(&xml_record(i)).unwrap())])
        .collect();
    table
        .append_file(&rows, WriteOptions::default(), 1)
        .unwrap();
    drop(catalog);

    let sql = "select get_json_object(payload, '$.order.@region') as region, count(*) as n \
               from xmldb.t group by get_json_object(payload, '$.order.@region') order by region";
    let before = session.execute(sql).unwrap();
    assert_eq!(before.rows.len(), 3);

    let history: Vec<QueryRecord> = (0..8u32)
        .flat_map(|day| {
            (0..2u32).map(move |user| QueryRecord {
                query_id: u64::from(day * 2 + user),
                user_id: user,
                day,
                hour: 9,
                recurrence: RecurrenceClass::Daily,
                paths: vec![JsonPathLocation::new(
                    "xmldb",
                    "t",
                    "payload",
                    "$.order.@region",
                )],
            })
        })
        .collect();
    let mut pipeline = MaxsonPipeline::new(
        &root,
        PipelineConfig {
            predictor: PredictorKind::RepeatYesterday,
            ..Default::default()
        },
    );
    pipeline.observe(history.iter());
    pipeline
        .run_midnight_cycle(&mut session, &history, 6, 100)
        .unwrap();
    let after = session.execute(sql).unwrap();
    assert_eq!(after.rows, before.rows);
    assert_eq!(after.metrics.parse_calls, 0);
    std::fs::remove_dir_all(&root).ok();
}
