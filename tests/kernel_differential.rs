//! Differential tests for the structural-kernel tiers and mmap'd Norc I/O.
//!
//! Two process-global fast paths ride the scan hot loop: the dispatched
//! SIMD/SWAR structural kernels (`maxson_json::kernels`) and memory-mapped
//! part-file reads (`MAXSON_MMAP`). Both are pure accelerations — they must
//! never change an answer — so every layer is pinned differentially:
//!
//! 1. **Bitmap bit-identity** — every available kernel tier must produce
//!    bitmaps identical to the scalar reference over the adversarial
//!    corpus (`maxson_testkit::corpus`): valid documents, invalid
//!    documents, and byte-level mutations of both. Same for the prefilter
//!    needle search against `str::contains`.
//! 2. **Query identity across tiers** — the golden rewriter queries run
//!    under every available tier × the bitmap-consuming parsers
//!    (Mison, Tape); rows, rendered output, and work counters must match
//!    the scalar-tier Jackson-free reference exactly.
//! 3. **mmap vs `fs::read`** — the same golden queries with mapped and
//!    copied part files must agree on rows *and* on `bytes_read` (the
//!    accounting is decode-driven, not I/O-driven, so mapping must not
//!    change it).
//! 4. **Failure injection** — truncated and bit-flipped part files must be
//!    rejected at open in both modes: the checksum is verified against the
//!    mapped bytes exactly as against the copied ones.
//!
//! Kernel selection is process-wide (`kernels::set_active`); that is safe
//! to exercise from a multi-threaded test binary precisely because tiers
//! are bit-identical — a concurrent test can never observe which tier ran.

use maxson::rewriter::MaxsonScanRewriter;
use maxson_engine::session::{JsonParserKind, Session};
use maxson_json::kernels::{self, Kernel};
use maxson_storage::file::MmapMode;
use maxson_storage::NorcFile;
use maxson_testkit::corpus;
use maxson_testkit::rng::Rng;
use std::path::{Path, PathBuf};

fn bench_data_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("bench-data")
}

fn temp_dir(name: &str) -> PathBuf {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .subsec_nanos();
    let dir =
        std::env::temp_dir().join(format!("maxson-kern-{}-{nanos}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The golden rewriter queries (see tests/rewriter_golden.rs), exercising
/// projection, filtering on an extracted field, and a sparse field.
const GOLDEN_QUERIES: [&str; 4] = [
    "select get_json_object(payload, '$.f0') as f0, \
     get_json_object(payload, '$.f1') as f1 from mydb.q1",
    "select get_json_object(payload, '$.f0') as f0, \
     get_json_object(payload, '$.f10') as f10 from mydb.q2",
    "select get_json_object(payload, '$.f0') as f0 \
     from mydb.q1 where get_json_object(payload, '$.f0') > 900",
    "select get_json_object(payload, '$.f12') as f12 from mydb.q2",
];

/// The corpus both bitmap tests walk: valid documents, invalid documents,
/// and byte-level mutations of both (seed-replayable).
fn differential_corpus() -> Vec<String> {
    let mut docs = corpus::valid_docs(0xD1FF, 120);
    docs.extend(corpus::invalid_docs(0xD1FF, 80));
    let mut rng = Rng::seed_from_u64(0xD1FF);
    let mutated: Vec<String> = docs
        .iter()
        .map(|d| corpus::mutate_bytes(d, &mut rng))
        .collect();
    docs.extend(mutated);
    docs
}

#[test]
fn all_tiers_build_identical_bitmaps_over_corpus() {
    let docs = differential_corpus();
    for doc in &docs {
        let bytes = doc.as_bytes();
        let reference = kernels::build_bitmaps_with(Kernel::Scalar, bytes);
        for kernel in kernels::available() {
            let got = kernels::build_bitmaps_with(kernel, bytes);
            assert_eq!(
                got.in_string,
                reference.in_string,
                "{} in_string bitmap diverged from scalar on {doc:?}",
                kernel.name()
            );
            assert_eq!(
                got.structural,
                reference.structural,
                "{} structural bitmap diverged from scalar on {doc:?}",
                kernel.name()
            );
        }
    }
}

#[test]
fn all_tiers_agree_with_std_contains_over_corpus() {
    let docs = differential_corpus();
    // Needles of every length class the prefilter emits: single byte,
    // short, and long (longer than one SIMD block step), plus guaranteed
    // misses and full-document self-matches.
    for doc in docs.iter().take(150) {
        let bytes = doc.as_bytes();
        let mut needles: Vec<Vec<u8>> = vec![
            b"".to_vec(),
            b"\"".to_vec(),
            b"id".to_vec(),
            "\u{1F6} definitely not in the corpus \u{1F6}"
                .as_bytes()
                .to_vec(),
            bytes.to_vec(),
        ];
        if bytes.len() >= 40 {
            needles.push(bytes[7..39].to_vec());
        }
        for needle in &needles {
            let expected = doc
                .as_bytes()
                .windows(needle.len().max(1))
                .any(|w| w == &needle[..])
                || needle.is_empty();
            for kernel in kernels::available() {
                assert_eq!(
                    kernels::contains_with(kernel, bytes, needle),
                    expected,
                    "{} contains diverged on doc {doc:?} needle {needle:?}",
                    kernel.name()
                );
            }
        }
    }
}

/// Run the golden queries under one configuration and collect rows +
/// rendered output + the deterministic work counters.
fn run_golden(root: &Path, parser: JsonParserKind, rewritten: bool) -> Vec<(String, [u64; 6])> {
    let mut session = Session::open(root).unwrap();
    session.set_parser(parser);
    session.set_threads(Some(1));
    if rewritten {
        let rewriter = MaxsonScanRewriter::open(root).unwrap();
        session.set_scan_rewriter(Some(Box::new(rewriter)));
    }
    GOLDEN_QUERIES
        .iter()
        .map(|sql| {
            let r = session
                .execute(sql)
                .unwrap_or_else(|e| panic!("{sql} failed: {e}"));
            let m = &r.metrics;
            (
                r.to_display_string(),
                [
                    m.rows_scanned,
                    m.bytes_read,
                    m.parse_calls,
                    m.docs_parsed,
                    m.row_groups_read,
                    m.cache_hits,
                ],
            )
        })
        .collect()
}

#[test]
fn golden_queries_identical_across_kernel_tiers() {
    let root = bench_data_root();
    let initial = kernels::active();
    let reference = {
        kernels::set_active(Kernel::Scalar);
        run_golden(&root, JsonParserKind::Mison, false)
    };
    for kernel in kernels::available() {
        let took = kernels::set_active(kernel);
        assert_eq!(took, kernel, "available tier must not clamp");
        for parser in [JsonParserKind::Mison, JsonParserKind::Tape] {
            for rewritten in [false, true] {
                let got = run_golden(&root, parser, rewritten);
                for (g, r) in got.iter().zip(&reference) {
                    assert_eq!(
                        g.0,
                        r.0,
                        "rows diverged under {} / {parser:?} / rewritten={rewritten}",
                        kernel.name()
                    );
                    if parser == JsonParserKind::Mison && !rewritten {
                        assert_eq!(g.1, r.1, "work counters diverged under {}", kernel.name());
                    }
                }
            }
        }
    }
    kernels::set_active(initial);
}

#[test]
fn kernel_metrics_surface_in_query_metrics() {
    let mut session = Session::open(bench_data_root()).unwrap();
    session.set_parser(JsonParserKind::Mison);
    session.set_threads(Some(1));
    let r = session.execute(GOLDEN_QUERIES[0]).unwrap();
    let m = &r.metrics;
    assert!(m.bitmap_builds > 0, "Mison parse must build bitmaps: {m:?}");
    assert!(m.bitmap_bytes > 0);
    assert_eq!(
        m.simd_kernel,
        kernels::active().id() as u64,
        "metrics must record the active tier"
    );
    assert!(m.summary().contains("simd="), "summary: {}", m.summary());

    // Jackson parses a DOM: no bitmaps, no kernel recorded.
    session.set_parser(JsonParserKind::Jackson);
    let r = session.execute(GOLDEN_QUERIES[0]).unwrap();
    assert_eq!(r.metrics.bitmap_builds, 0, "{:?}", r.metrics);
    assert_eq!(r.metrics.simd_kernel, 0);
}

/// Golden queries must agree between mapped and copied part files on rows
/// and on `bytes_read` — mapping changes how bytes arrive, never how many
/// are decoded.
#[test]
fn golden_queries_identical_mmap_on_and_off() {
    let root = bench_data_root();
    for parser in [
        JsonParserKind::Jackson,
        JsonParserKind::Mison,
        JsonParserKind::Tape,
    ] {
        // MAXSON_MMAP is read at each split open inside execute; flipping
        // it around whole query runs is the honest engine-level toggle.
        std::env::set_var("MAXSON_MMAP", "0");
        let copied = run_golden(&root, parser, false);
        std::env::set_var("MAXSON_MMAP", "1");
        let mapped = run_golden(&root, parser, false);
        std::env::remove_var("MAXSON_MMAP");
        assert_eq!(copied, mapped, "mmap on/off diverged under {parser:?}");
    }
}

/// A part file opens mapped by default on unix and reads back the same
/// chunk bytes in both modes.
#[test]
fn part_file_chunks_identical_mapped_and_copied() {
    let root = bench_data_root();
    let part = root.join("mydb/q1/part-00000.norc");
    let mapped = NorcFile::open_with(&part, MmapMode::Enabled).unwrap();
    let copied = NorcFile::open_with(&part, MmapMode::Disabled).unwrap();
    assert!(
        cfg!(not(unix)) || mapped.is_mapped(),
        "unix default is mapped"
    );
    assert!(!copied.is_mapped());
    assert_eq!(mapped.num_rows(), copied.num_rows());
    assert_eq!(mapped.byte_size(), copied.byte_size());
    let rgs = mapped.row_group_count();
    let cols = mapped.schema().fields().len();
    for rg in 0..rgs {
        for c in 0..cols {
            let a = mapped.read_chunk(rg, c).unwrap();
            let b = copied.read_chunk(rg, c).unwrap();
            assert_eq!(a.len(), b.len(), "rg {rg} col {c}");
            for i in 0..a.len() {
                assert_eq!(a.get(i), b.get(i), "rg {rg} col {c} row {i}");
            }
        }
    }
}

/// Truncated and corrupted part files must fail at open in both modes —
/// the checksum is validated over the mapped bytes too.
#[test]
fn truncated_and_corrupt_files_rejected_in_both_modes() {
    let root = bench_data_root();
    let part = root.join("mydb/q1/part-00000.norc");
    let bytes = std::fs::read(&part).unwrap();
    let dir = temp_dir("inject");

    // Truncations: mid-footer, mid-stripe, below any plausible header, and
    // a partial-page cut (len deliberately not sector-aligned).
    for (i, cut) in [
        bytes.len() - 1,
        bytes.len() - 9,
        bytes.len() / 2,
        4097.min(bytes.len() - 2),
        3,
    ]
    .into_iter()
    .enumerate()
    {
        let p = dir.join(format!("trunc-{i}.norc"));
        std::fs::write(&p, &bytes[..cut]).unwrap();
        for mode in [MmapMode::Enabled, MmapMode::Disabled] {
            assert!(
                NorcFile::open_with(&p, mode).is_err(),
                "truncation at {cut} must fail to open (mode {mode:?})"
            );
        }
    }

    // Bit flips in the body must trip the checksum identically.
    for (i, pos) in [8usize, bytes.len() / 3, bytes.len() - 20]
        .into_iter()
        .enumerate()
    {
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0x40;
        let p = dir.join(format!("flip-{i}.norc"));
        std::fs::write(&p, &corrupt).unwrap();
        for mode in [MmapMode::Enabled, MmapMode::Disabled] {
            assert!(
                NorcFile::open_with(&p, mode).is_err(),
                "bit flip at {pos} must fail to open (mode {mode:?})"
            );
        }
    }

    // An empty file (the degenerate zero-length mapping) is rejected too.
    let p = dir.join("empty.norc");
    std::fs::write(&p, b"").unwrap();
    for mode in [MmapMode::Enabled, MmapMode::Disabled] {
        assert!(NorcFile::open_with(&p, mode).is_err());
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// `MAXSON_SIMD` name resolution: every tier name round-trips, unknown
/// names fall back to best-available, and `set_active` clamps requests the
/// CPU cannot serve.
#[test]
fn kernel_name_resolution_and_clamping() {
    for kernel in kernels::available() {
        assert_eq!(Kernel::from_name(kernel.name()), Some(kernel));
        assert_eq!(kernels::set_active(kernel), kernel);
    }
    assert_eq!(Kernel::from_name("not-a-kernel"), None);
    // Scalar and SWAR are always available; the session surface reports
    // whatever dispatch settled on.
    let mut session = Session::open(bench_data_root()).unwrap();
    let took = session.set_simd(Kernel::Swar);
    assert_eq!(took, Kernel::Swar);
    assert_eq!(session.simd_kernel(), Kernel::Swar);
    session.set_simd(kernels::best_available());
}
