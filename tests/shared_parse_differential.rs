//! Differential tests proving intra-query shared-parse extraction
//! (`MAXSON_SHARED_PARSE`) is byte-identical to the naive
//! parse-per-call reference path.
//!
//! Three layers:
//!
//! 1. **Golden queries** — the rewriter golden queries (plain and
//!    Maxson-rewritten sessions) plus a NoBench workload, run with shared
//!    parse off and on, under Jackson and Mison, at 1 and 4 threads: rows,
//!    rendered output, and every work counter except `docs_parsed` must
//!    match the naive serial reference exactly (`docs_parsed` is the one
//!    counter shared parse exists to shrink — it must never exceed
//!    `parse_calls`, and must be thread-invariant).
//! 2. **Dedup factor** — a Fig. 15-shaped query (JSON predicate plus three
//!    projected paths on one column) must reach a >=4x dedup factor with
//!    byte-identical rows.
//! 3. **Property test** — random tables and random JSON queries; shared ==
//!    naive for every case, both parsers, 1 and 4 threads. Failures replay
//!    via `MAXSON_TESTKIT_SEED`.
//!
//! Toggles are pinned with `Session::set_shared_parse` /
//! `Session::set_threads`, not env vars, so parallel test binaries cannot
//! race on process-global state (ci.sh covers the env-var path).

use maxson::rewriter::MaxsonScanRewriter;
use maxson_datagen::NobenchGenerator;
use maxson_engine::metrics::ExecMetrics;
use maxson_engine::session::{JsonParserKind, Session};
use maxson_storage::file::WriteOptions;
use maxson_storage::{Cell, ColumnType, Field, Schema};
use maxson_testkit::prop::{check, Config, Gen};
use maxson_testkit::rng::Rng;
use std::path::PathBuf;

fn bench_data_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("bench-data")
}

fn temp_root(name: &str) -> PathBuf {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .subsec_nanos();
    std::env::temp_dir().join(format!("maxson-sp-{}-{nanos}-{name}", std::process::id()))
}

/// The golden rewriter queries (see tests/rewriter_golden.rs).
const GOLDEN_QUERIES: [&str; 4] = [
    "select get_json_object(payload, '$.f0') as f0, \
     get_json_object(payload, '$.f1') as f1 from mydb.q1",
    "select get_json_object(payload, '$.f0') as f0, \
     get_json_object(payload, '$.f10') as f10 from mydb.q2",
    "select get_json_object(payload, '$.f0') as f0 \
     from mydb.q1 where get_json_object(payload, '$.f0') > 900",
    "select get_json_object(payload, '$.f12') as f12 from mydb.q2",
];

/// Counters that must be identical between shared and naive runs —
/// everything that counts discrete work except `docs_parsed`, which is
/// exactly the counter shared parse shrinks.
fn shared_invariant_counters(m: &ExecMetrics) -> [u64; 7] {
    [
        m.rows_scanned,
        m.bytes_read,
        m.parse_calls,
        m.cache_hits,
        m.row_groups_skipped,
        m.row_groups_read,
        m.prefilter_dropped,
    ]
}

/// Run `sql` with shared parse off (serial Jackson reference) and compare
/// against shared-parse-on runs across both parsers and thread counts.
fn assert_shared_differential(mut make_session: impl FnMut() -> Session, sql: &str, label: &str) {
    for parser in [JsonParserKind::Jackson, JsonParserKind::Mison] {
        let mut reference_session = make_session();
        reference_session.set_parser_kind(parser);
        reference_session.set_threads(Some(1));
        reference_session.set_shared_parse(Some(false));
        let reference = reference_session
            .execute(sql)
            .unwrap_or_else(|e| panic!("[{label}] naive run failed for {sql}: {e}"));
        assert_eq!(
            reference.metrics.parse_calls, reference.metrics.docs_parsed,
            "[{label}] naive mode parses once per call"
        );
        let mut shared_docs: Option<u64> = None;
        for threads in [1, 4] {
            let mut session = make_session();
            session.set_parser_kind(parser);
            session.set_threads(Some(threads));
            session.set_shared_parse(Some(true));
            let result = session.execute(sql).unwrap_or_else(|e| {
                panic!("[{label}] shared run failed for {sql} at {threads} threads: {e}")
            });
            assert_eq!(
                result.rows, reference.rows,
                "[{label}] rows diverged for {sql} ({parser:?}, {threads} threads)"
            );
            assert_eq!(
                result.to_display_string(),
                reference.to_display_string(),
                "[{label}] rendered output diverged for {sql} ({parser:?}, {threads} threads)"
            );
            assert_eq!(
                shared_invariant_counters(&result.metrics),
                shared_invariant_counters(&reference.metrics),
                "[{label}] work counters diverged for {sql} ({parser:?}, {threads} threads): \
                 shared {:?} vs naive {:?}",
                result.metrics,
                reference.metrics
            );
            assert!(
                result.metrics.docs_parsed <= result.metrics.parse_calls,
                "[{label}] docs_parsed must never exceed parse_calls: {:?}",
                result.metrics
            );
            // docs_parsed is a per-row quantity, so it cannot depend on how
            // rows are distributed over threads.
            match shared_docs {
                None => shared_docs = Some(result.metrics.docs_parsed),
                Some(d) => assert_eq!(
                    result.metrics.docs_parsed, d,
                    "[{label}] docs_parsed not thread-invariant for {sql} ({parser:?})"
                ),
            }
        }
    }
}

#[test]
fn golden_queries_identical_with_and_without_shared_parse_plain() {
    for sql in GOLDEN_QUERIES {
        assert_shared_differential(|| Session::open(bench_data_root()).unwrap(), sql, "plain");
    }
}

#[test]
fn golden_queries_identical_with_and_without_shared_parse_rewritten() {
    let make = || {
        let root = bench_data_root();
        let mut session = Session::open(&root).unwrap();
        let rewriter = MaxsonScanRewriter::open(&root).unwrap();
        session.set_scan_rewriter(Some(Box::new(rewriter)));
        session
    };
    for sql in GOLDEN_QUERIES {
        assert_shared_differential(make, sql, "rewritten");
    }
}

// ---------------------------------------------------------------------
// NoBench workload + dedup factor
// ---------------------------------------------------------------------

/// Build a NoBench table: `rows` seeded JSON documents over `files` splits.
fn nobench_table(name: &str, rows: u64, files: u64) -> PathBuf {
    let root = temp_root(name);
    let mut session = Session::open(&root).unwrap();
    let schema = Schema::new(vec![
        Field::new("id", ColumnType::Int64),
        Field::new("payload", ColumnType::Utf8),
    ])
    .unwrap();
    let mut catalog = session.catalog_mut();
    let table = catalog.create_table("nb", "docs", schema, 0).unwrap();
    let mut generator = NobenchGenerator::new(42);
    let per_file = rows / files;
    for f in 0..files {
        let rows: Vec<Vec<Cell>> = (f * per_file..(f + 1) * per_file)
            .map(|i| vec![Cell::Int(i as i64), Cell::from(generator.record_text(i))])
            .collect();
        table
            .append_file(
                &rows,
                WriteOptions {
                    row_group_size: 16,
                    ..Default::default()
                },
                1,
            )
            .unwrap();
    }
    drop(catalog);
    root
}

#[test]
fn nobench_workload_identical_with_and_without_shared_parse() {
    let root = nobench_table("nobench", 240, 4);
    let queries = [
        // Filter + multi-path projection over one column — the Fig. 15
        // shape shared parse targets.
        "select get_json_object(payload, '$.str1') as s1, \
         get_json_object(payload, '$.num') as num, \
         get_json_object(payload, '$.nested_obj.str') as ns from nb.docs \
         where get_json_object(payload, '$.bool') = 'true'",
        // Repeated path: projection and predicate reuse $.num.
        "select get_json_object(payload, '$.num') as num from nb.docs \
         where get_json_object(payload, '$.num') > 100",
        // Grouped aggregation with JSON group key and JSON agg argument.
        "select get_json_object(payload, '$.str2') as grp, count(*), \
         sum(get_json_object(payload, '$.num')), \
         avg(get_json_object(payload, '$.num')) from nb.docs \
         group by get_json_object(payload, '$.str2')",
        // Raw-column predicate: rejected rows must not parse (laziness).
        "select get_json_object(payload, '$.str1') as s1 from nb.docs \
         where id < 60",
        // Sort on a JSON key above the segment.
        "select id from nb.docs order by get_json_object(payload, '$.num') limit 9",
    ];
    for sql in queries {
        assert_shared_differential(|| Session::open(&root).unwrap(), sql, "nobench");
    }
    std::fs::remove_dir_all(&root).ok();
}

/// A Fig. 15-shaped query — JSON predicate plus three more paths on the
/// same column — must reach a >=4x intra-query dedup factor: four
/// evaluations per row served by one parse.
#[test]
fn fig15_shape_reaches_4x_dedup_factor() {
    let root = temp_root("dedup4x");
    let mut session = Session::open(&root).unwrap();
    let schema = Schema::new(vec![
        Field::new("id", ColumnType::Int64),
        Field::new("payload", ColumnType::Utf8),
    ])
    .unwrap();
    let mut catalog = session.catalog_mut();
    let table = catalog.create_table("db", "t", schema, 0).unwrap();
    let rows: Vec<Vec<Cell>> = (0..120)
        .map(|i| {
            vec![
                Cell::Int(i),
                Cell::from(format!(
                    r#"{{"a": {i}, "b": "s{i}", "c": {}, "v": {}}}"#,
                    i * 2,
                    i % 5
                )),
            ]
        })
        .collect();
    table
        .append_file(&rows, WriteOptions::default(), 1)
        .unwrap();
    drop(catalog);

    let sql = "select get_json_object(payload, '$.a') as a, \
               get_json_object(payload, '$.b') as b, \
               get_json_object(payload, '$.c') as c from db.t \
               where get_json_object(payload, '$.v') >= 0";
    for parser in [JsonParserKind::Jackson, JsonParserKind::Mison] {
        session.set_parser_kind(parser);
        session.set_threads(Some(1));
        session.set_shared_parse(Some(false));
        let naive = session.execute(sql).unwrap();
        session.set_shared_parse(Some(true));
        let shared = session.execute(sql).unwrap();
        assert_eq!(shared.rows, naive.rows, "{parser:?}");
        assert_eq!(shared.rows.len(), 120);
        assert_eq!(shared.metrics.parse_calls, naive.metrics.parse_calls);
        assert_eq!(shared.metrics.parse_calls, 480, "4 evaluations per row");
        assert_eq!(shared.metrics.docs_parsed, 120, "1 parse per row");
        assert!(
            shared.metrics.parse_dedup_factor() >= 4.0,
            "{parser:?}: dedup {:.2}x",
            shared.metrics.parse_dedup_factor()
        );
        assert_eq!(naive.metrics.docs_parsed, 480);
    }
    std::fs::remove_dir_all(&root).ok();
}

// ---------------------------------------------------------------------
// Property test: random tables x random JSON queries
// ---------------------------------------------------------------------

/// One generated scenario: table shape and a JSON-heavy query over it.
#[derive(Debug, Clone)]
struct Scenario {
    table_seed: u64,
    splits: usize,
    rows_per_split: usize,
    query: usize,
    threshold: i64,
    mison: bool,
}

const NUM_QUERIES: usize = 5;

fn scenario_gen() -> Gen<Scenario> {
    let base = Gen::tuple2(
        Gen::tuple2(Gen::u64_any(), Gen::usize_in(1..=6)),
        Gen::tuple2(
            Gen::tuple2(Gen::usize_in(0..=16), Gen::usize_in(0..=NUM_QUERIES - 1)),
            Gen::tuple2(Gen::i64_in(-20..=120), Gen::u64_any()),
        ),
    );
    base.map(
        |((table_seed, splits), ((rows_per_split, query), (threshold, coin)))| Scenario {
            table_seed,
            splits,
            rows_per_split,
            query,
            threshold,
            mison: coin % 2 == 0,
        },
    )
}

fn scenario_sql(s: &Scenario) -> String {
    let th = s.threshold;
    match s.query {
        0 => format!(
            "select get_json_object(doc, '$.x') as x, get_json_object(doc, '$.y') as y \
             from db.t where get_json_object(doc, '$.x') >= {th}"
        ),
        1 => "select get_json_object(doc, '$.tag') as tag, count(*), \
              sum(get_json_object(doc, '$.x')) from db.t \
              group by get_json_object(doc, '$.tag')"
            .into(),
        2 => format!(
            "select id, get_json_object(doc, '$.y') as y from db.t \
             where id < {th}"
        ),
        3 => "select get_json_object(doc, '$.x') as x1, \
              get_json_object(doc, '$.x') as x2, \
              get_json_object(doc, '$.missing') as nope from db.t"
            .into(),
        _ => format!(
            "select count(*), avg(get_json_object(doc, '$.x')) from db.t \
             where get_json_object(doc, '$.y') > {th}"
        ),
    }
}

/// Deterministic table of JSON documents with occasionally-missing fields
/// and malformed records, so shared parse also covers the error paths.
fn build_scenario_table(s: &Scenario, root: &PathBuf) -> Session {
    let mut session = Session::open(root).unwrap();
    let schema = Schema::new(vec![
        Field::new("id", ColumnType::Int64),
        Field::new("doc", ColumnType::Utf8),
    ])
    .unwrap();
    let mut catalog = session.catalog_mut();
    let table = catalog.create_table("db", "t", schema, 0).unwrap();
    let mut rng = Rng::seed_from_u64(s.table_seed);
    for _ in 0..s.splits {
        let rows: Vec<Vec<Cell>> = (0..s.rows_per_split)
            .map(|_| {
                let id = Cell::Int(rng.gen_range(-100..=100));
                let doc = if rng.gen_bool(0.05) {
                    "{broken".to_string()
                } else {
                    let x = rng.gen_range(-100..=100);
                    let y = rng.gen_range(-100..=100);
                    let tag = rng.gen_range(0..=3u32);
                    if rng.gen_bool(0.1) {
                        format!(r#"{{"x": {x}, "tag": "g{tag}"}}"#)
                    } else {
                        format!(r#"{{"x": {x}, "y": {y}, "tag": "g{tag}"}}"#)
                    }
                };
                vec![id, Cell::from(doc)]
            })
            .collect();
        table
            .append_file(
                &rows,
                WriteOptions {
                    row_group_size: 7,
                    ..Default::default()
                },
                1,
            )
            .unwrap();
    }
    drop(catalog);
    session
}

#[test]
fn property_random_json_queries_shared_equals_naive() {
    let cfg = Config::with_cases(24);
    check(
        "shared_parse_equals_naive",
        &cfg,
        &scenario_gen(),
        |scenario| {
            let root = temp_root(&format!("prop-{}", scenario.table_seed));
            let mut session = build_scenario_table(scenario, &root);
            let parser = if scenario.mison {
                JsonParserKind::Mison
            } else {
                JsonParserKind::Jackson
            };
            session.set_parser_kind(parser);
            let sql = scenario_sql(scenario);

            session.set_threads(Some(1));
            session.set_shared_parse(Some(false));
            let reference = session.execute(&sql).map_err(|e| format!("naive: {e}"))?;
            for threads in [1, 4] {
                session.set_threads(Some(threads));
                session.set_shared_parse(Some(true));
                let result = session
                    .execute(&sql)
                    .map_err(|e| format!("shared, {threads} threads: {e}"))?;
                maxson_testkit::prop_assert_eq!(&result.rows, &reference.rows);
                maxson_testkit::prop_assert_eq!(
                    result.to_display_string(),
                    reference.to_display_string()
                );
                maxson_testkit::prop_assert_eq!(
                    result.metrics.parse_calls,
                    reference.metrics.parse_calls
                );
                maxson_testkit::prop_assert!(
                    result.metrics.docs_parsed <= result.metrics.parse_calls
                );
            }
            std::fs::remove_dir_all(&root).ok();
            Ok(())
        },
    );
}
