//! Differential tests proving split-parallel execution is byte-identical
//! to the serial reference path.
//!
//! Three layers:
//!
//! 1. **Golden queries** — every rewriter golden query from PR 1 (plain and
//!    Maxson-rewritten sessions) plus a NoBench workload run at thread
//!    counts {1, 2, 4, 8}; rows, rendered output, and work-counting metrics
//!    (rows scanned, row-group skips, parse calls, cache hits) must match
//!    the 1-thread run exactly.
//! 2. **Property test** — random small tables (1–8 splits, mixed types,
//!    nulls) and random filter/project/agg queries; parallel == serial for
//!    every case. Failures replay via `MAXSON_TESTKIT_SEED`.
//! 3. **Pool stress at the engine boundary** — a poisoned split surfaces
//!    the split index in an engine error (not a hang), and empty or
//!    single-split tables never engage the pool.
//!
//! Thread counts are pinned with `Session::set_threads`, not the
//! `MAXSON_THREADS` env var, so parallel test binaries cannot race on
//! process-global state (ci.sh covers the env-var path).

use maxson::rewriter::MaxsonScanRewriter;
use maxson_datagen::NobenchGenerator;
use maxson_engine::metrics::ExecMetrics;
use maxson_engine::scan::ScanProvider;
use maxson_engine::session::{ScanContext, ScanRewrite, Session, TableScanRewriter};
use maxson_storage::file::WriteOptions;
use maxson_storage::{Cell, ColumnType, Field, Schema};
use maxson_testkit::prop::{check, Config, Gen};
use maxson_testkit::rng::Rng;
use std::path::PathBuf;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn bench_data_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("bench-data")
}

fn temp_root(name: &str) -> PathBuf {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .subsec_nanos();
    std::env::temp_dir().join(format!("maxson-par-{}-{nanos}-{name}", std::process::id()))
}

/// The golden rewriter queries from PR 1 (see tests/rewriter_golden.rs).
const GOLDEN_QUERIES: [&str; 4] = [
    "select get_json_object(payload, '$.f0') as f0, \
     get_json_object(payload, '$.f1') as f1 from mydb.q1",
    "select get_json_object(payload, '$.f0') as f0, \
     get_json_object(payload, '$.f10') as f10 from mydb.q2",
    "select get_json_object(payload, '$.f0') as f0 \
     from mydb.q1 where get_json_object(payload, '$.f0') > 900",
    "select get_json_object(payload, '$.f12') as f12 from mydb.q2",
];

/// Work-counting metrics that must be invariant under parallelism. Timing
/// fields are excluded (they legitimately vary); everything that counts
/// discrete work must not — including `docs_parsed`, since shared-parse
/// slots are per-row and rows never move between splits.
fn work_counters(m: &ExecMetrics) -> [u64; 8] {
    [
        m.rows_scanned,
        m.bytes_read,
        m.parse_calls,
        m.docs_parsed,
        m.cache_hits,
        m.row_groups_skipped,
        m.row_groups_read,
        m.prefilter_dropped,
    ]
}

fn assert_differential(mut make_session: impl FnMut() -> Session, sql: &str, label: &str) {
    let mut reference_session = make_session();
    reference_session.set_threads(Some(1));
    let reference = reference_session
        .execute(sql)
        .unwrap_or_else(|e| panic!("[{label}] serial run failed for {sql}: {e}"));
    assert_eq!(
        reference.metrics.threads_used, 0,
        "[{label}] serial run must not engage the pool"
    );
    for threads in THREAD_COUNTS {
        let mut session = make_session();
        session.set_threads(Some(threads));
        let result = session
            .execute(sql)
            .unwrap_or_else(|e| panic!("[{label}] {threads}-thread run failed for {sql}: {e}"));
        assert_eq!(
            result.rows, reference.rows,
            "[{label}] rows diverged at {threads} threads for {sql}"
        );
        assert_eq!(
            result.to_display_string(),
            reference.to_display_string(),
            "[{label}] rendered output diverged at {threads} threads for {sql}"
        );
        assert_eq!(
            work_counters(&result.metrics),
            work_counters(&reference.metrics),
            "[{label}] work counters diverged at {threads} threads for {sql}: \
             parallel {:?} vs serial {:?}",
            result.metrics,
            reference.metrics
        );
    }
}

#[test]
fn golden_queries_identical_across_thread_counts_plain() {
    for sql in GOLDEN_QUERIES {
        assert_differential(|| Session::open(bench_data_root()).unwrap(), sql, "plain");
    }
}

#[test]
fn golden_queries_identical_across_thread_counts_rewritten() {
    let make = || {
        let root = bench_data_root();
        let mut session = Session::open(&root).unwrap();
        let rewriter = MaxsonScanRewriter::open(&root).unwrap();
        session.set_scan_rewriter(Some(Box::new(rewriter)));
        session
    };
    for sql in GOLDEN_QUERIES {
        assert_differential(make, sql, "rewritten");
    }
}

#[test]
fn multi_split_golden_query_actually_parallelizes() {
    // Sanity check that the differential above is not vacuous: the mydb
    // tables have 2 files, so a >1-thread run must engage the pool.
    let mut session = Session::open(bench_data_root()).unwrap();
    session.set_threads(Some(4));
    let result = session.execute(GOLDEN_QUERIES[0]).unwrap();
    assert!(
        result.metrics.threads_used > 0,
        "expected a pool run: {:?}",
        result.metrics
    );
    assert_eq!(result.metrics.par_tasks, 2, "one task per split");
    assert!(result.metrics.summary().contains("threads="));
}

// ---------------------------------------------------------------------
// NoBench workload
// ---------------------------------------------------------------------

/// Build a NoBench table: `rows` seeded JSON documents spread over
/// `files` splits.
fn nobench_table(name: &str, rows: u64, files: u64) -> PathBuf {
    let root = temp_root(name);
    let mut session = Session::open(&root).unwrap();
    let schema = Schema::new(vec![
        Field::new("id", ColumnType::Int64),
        Field::new("payload", ColumnType::Utf8),
    ])
    .unwrap();
    let mut catalog = session.catalog_mut();
    let table = catalog.create_table("nb", "docs", schema, 0).unwrap();
    let mut generator = NobenchGenerator::new(42);
    let per_file = rows / files;
    for f in 0..files {
        let rows: Vec<Vec<Cell>> = (f * per_file..(f + 1) * per_file)
            .map(|i| vec![Cell::Int(i as i64), Cell::from(generator.record_text(i))])
            .collect();
        table
            .append_file(
                &rows,
                WriteOptions {
                    row_group_size: 16,
                    ..Default::default()
                },
                1,
            )
            .unwrap();
    }
    drop(catalog);
    root
}

#[test]
fn nobench_workload_identical_across_thread_counts() {
    let root = nobench_table("nobench", 240, 4);
    let queries = [
        // Projection over nested and flat paths.
        "select get_json_object(payload, '$.str1') as s1, \
         get_json_object(payload, '$.nested_obj.num') as nn from nb.docs",
        // Filter on a JSON path plus a raw column.
        "select id, get_json_object(payload, '$.num') as num from nb.docs \
         where get_json_object(payload, '$.bool') = 'true' and id < 200",
        // Global aggregates over a numeric path.
        "select count(*), sum(get_json_object(payload, '$.num')), \
         avg(get_json_object(payload, '$.num')) from nb.docs",
        // Grouped aggregation on the group-structured str2 field.
        "select get_json_object(payload, '$.str2') as grp, count(*), \
         max(get_json_object(payload, '$.num')) from nb.docs \
         group by get_json_object(payload, '$.str2')",
        // Sort + limit above a parallel segment.
        "select id from nb.docs order by id desc limit 7",
    ];
    for sql in queries {
        assert_differential(|| Session::open(&root).unwrap(), sql, "nobench");
    }
    std::fs::remove_dir_all(&root).ok();
}

// ---------------------------------------------------------------------
// Property test: random tables x random plans
// ---------------------------------------------------------------------

/// One generated scenario: a table shape and a query over it.
#[derive(Debug, Clone)]
struct Scenario {
    table_seed: u64,
    splits: usize,
    rows_per_split: usize,
    query: usize,
    threshold: i64,
}

fn scenario_gen() -> Gen<Scenario> {
    let base = Gen::tuple2(
        Gen::tuple2(Gen::u64_any(), Gen::usize_in(1..=8)),
        Gen::tuple2(
            Gen::tuple2(Gen::usize_in(0..=20), Gen::usize_in(0..=NUM_QUERIES - 1)),
            Gen::i64_in(-50..=150),
        ),
    );
    base.map(
        |((table_seed, splits), ((rows_per_split, query), threshold))| Scenario {
            table_seed,
            splits,
            rows_per_split,
            query,
            threshold,
        },
    )
}

const NUM_QUERIES: usize = 6;

fn scenario_sql(s: &Scenario) -> String {
    let th = s.threshold;
    match s.query {
        0 => format!("select id, tag from db.t where id >= {th}"),
        1 => "select count(*), sum(val), avg(val), min(id), max(id) from db.t".into(),
        2 => "select tag, count(*), sum(val) from db.t group by tag".into(),
        3 => "select id, val, tag from db.t".into(),
        4 => format!(
            "select tag, min(val), max(val), count(val) from db.t \
             where id < {th} group by tag"
        ),
        _ => format!("select count(*) from db.t where val > {}", th as f64 / 10.0),
    }
}

/// Build the scenario's table: typed columns with nulls, deterministic
/// from the scenario seed. Columns stay consistently typed (int/float/str)
/// so MIN/MAX comparisons are total — mixed-type extremes are documented
/// as incomparable under `sql_cmp` and are not a parallelism property.
fn build_scenario_table(s: &Scenario, root: &PathBuf) -> Session {
    let mut session = Session::open(root).unwrap();
    let schema = Schema::new(vec![
        Field::new("id", ColumnType::Int64),
        Field::new("val", ColumnType::Float64),
        Field::new("tag", ColumnType::Utf8),
    ])
    .unwrap();
    let mut catalog = session.catalog_mut();
    let table = catalog.create_table("db", "t", schema, 0).unwrap();
    let mut rng = Rng::seed_from_u64(s.table_seed);
    for _ in 0..s.splits {
        let rows: Vec<Vec<Cell>> = (0..s.rows_per_split)
            .map(|_| {
                let id = if rng.gen_bool(0.1) {
                    Cell::Null
                } else {
                    Cell::Int(rng.gen_range(-100..=100))
                };
                let val = if rng.gen_bool(0.15) {
                    Cell::Null
                } else {
                    Cell::Float(rng.gen_range(-1000..=1000) as f64 / 8.0)
                };
                let tag = Cell::from(format!("g{}", rng.gen_range(0..=4u32)));
                vec![id, val, tag]
            })
            .collect();
        table
            .append_file(
                &rows,
                WriteOptions {
                    row_group_size: 7,
                    ..Default::default()
                },
                1,
            )
            .unwrap();
    }
    drop(catalog);
    session
}

#[test]
fn property_random_tables_and_plans_parallel_equals_serial() {
    let cfg = Config::with_cases(24);
    check(
        "parallel_equals_serial",
        &cfg,
        &scenario_gen(),
        |scenario| {
            let root = temp_root(&format!("prop-{}", scenario.table_seed));
            let mut session = build_scenario_table(scenario, &root);
            let sql = scenario_sql(scenario);

            session.set_threads(Some(1));
            let reference = session.execute(&sql).map_err(|e| format!("serial: {e}"))?;
            for threads in [2, 4, 8] {
                session.set_threads(Some(threads));
                let result = session
                    .execute(&sql)
                    .map_err(|e| format!("{threads} threads: {e}"))?;
                maxson_testkit::prop_assert_eq!(&result.rows, &reference.rows);
                maxson_testkit::prop_assert_eq!(
                    result.to_display_string(),
                    reference.to_display_string()
                );
                maxson_testkit::prop_assert_eq!(
                    work_counters(&result.metrics),
                    work_counters(&reference.metrics)
                );
            }
            std::fs::remove_dir_all(&root).ok();
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Pool stress at the engine boundary
// ---------------------------------------------------------------------

/// Provider with a split that panics mid-scan (poisoned data).
#[derive(Debug)]
struct PoisonedProvider {
    schema: Schema,
    splits: usize,
    poisoned: usize,
}

impl ScanProvider for PoisonedProvider {
    fn schema(&self) -> &Schema {
        &self.schema
    }
    fn scan(&self, metrics: &mut ExecMetrics) -> maxson_engine::Result<Vec<Vec<Cell>>> {
        let mut rows = Vec::new();
        for s in 0..self.splits {
            rows.extend(self.scan_split(s, metrics)?);
        }
        Ok(rows)
    }
    fn split_count(&self) -> usize {
        self.splits
    }
    fn scan_split(
        &self,
        split: usize,
        _metrics: &mut ExecMetrics,
    ) -> maxson_engine::Result<Vec<Vec<Cell>>> {
        if split == self.poisoned {
            panic!("poisoned split payload");
        }
        Ok(vec![vec![Cell::Int(split as i64)]])
    }
    fn label(&self) -> String {
        "PoisonedProvider".into()
    }
}

/// Rewriter that swaps every scan for a [`PoisonedProvider`].
struct PoisonRewriter {
    splits: usize,
    poisoned: usize,
}

impl TableScanRewriter for PoisonRewriter {
    fn name(&self) -> &str {
        "Poison"
    }
    fn rewrite_scan(&self, _ctx: &ScanContext<'_>) -> maxson_engine::Result<Option<ScanRewrite>> {
        let schema = Schema::new(vec![Field::new("id", ColumnType::Int64)]).unwrap();
        Ok(Some(ScanRewrite {
            provider: Box::new(PoisonedProvider {
                schema,
                splits: self.splits,
                poisoned: self.poisoned,
            }),
            resolved_paths: Vec::new(),
        }))
    }
}

fn one_row_table(name: &str) -> PathBuf {
    let root = temp_root(name);
    let mut session = Session::open(&root).unwrap();
    let schema = Schema::new(vec![Field::new("id", ColumnType::Int64)]).unwrap();
    let mut catalog = session.catalog_mut();
    let table = catalog.create_table("db", "t", schema, 0).unwrap();
    table
        .append_file(&[vec![Cell::Int(1)]], WriteOptions::default(), 1)
        .unwrap();
    drop(catalog);
    root
}

#[test]
fn poisoned_split_surfaces_split_index_as_engine_error() {
    let root = one_row_table("poison");
    let mut session = Session::open(&root).unwrap();
    session.set_scan_rewriter(Some(Box::new(PoisonRewriter {
        splits: 6,
        poisoned: 3,
    })));
    // Panic containment is a pool property: at 1 thread the scan runs on
    // the caller like it always has, so only pooled counts are asserted.
    for threads in [2, 4, 8] {
        session.set_threads(Some(threads));
        let err = session.execute("select id from db.t").unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("split 3") && msg.contains("poisoned split payload"),
            "{threads} threads: error must name the split: {msg}"
        );
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn single_split_table_does_not_engage_the_pool() {
    let root = one_row_table("single");
    let mut session = Session::open(&root).unwrap();
    session.set_threads(Some(8));
    let result = session.execute("select id from db.t").unwrap();
    assert_eq!(result.rows, vec![vec![Cell::Int(1)]]);
    assert_eq!(
        result.metrics.threads_used, 0,
        "single-split scans stay serial: {:?}",
        result.metrics
    );
    assert_eq!(result.metrics.par_tasks, 0);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn empty_table_does_not_engage_the_pool() {
    let root = temp_root("empty");
    let mut session = Session::open(&root).unwrap();
    let schema = Schema::new(vec![Field::new("id", ColumnType::Int64)]).unwrap();
    session
        .catalog_mut()
        .create_table("db", "t", schema, 0)
        .unwrap();
    session.set_threads(Some(8));
    let result = session.execute("select id from db.t").unwrap();
    assert!(result.rows.is_empty());
    assert_eq!(result.metrics.threads_used, 0);
    assert_eq!(result.metrics.par_tasks, 0);
    std::fs::remove_dir_all(&root).ok();
}
