//! Differential proof that tracing is zero-cost in the only sense that
//! matters: it never changes what a query computes.
//!
//! Three layers:
//!
//! 1. **Golden queries** — the Maxson-rewritten golden queries over the
//!    checked-in warehouse, run untraced vs traced at 1 and 4 threads with
//!    both JSON parsers; rows, rendered output, and every work counter
//!    must be identical.
//! 2. **Property test** — random tables and random JSON queries; tracing
//!    on/off never changes rows or counters. Failures replay via
//!    `MAXSON_TESTKIT_SEED`.
//! 3. **Trace export** — the Chrome trace-event file a parallel query
//!    writes is valid JSON whose spans nest (every `parent` id resolves)
//!    and whose events all sit on named per-thread tracks.

use maxson::rewriter::MaxsonScanRewriter;
use maxson_engine::metrics::ExecMetrics;
use maxson_engine::session::{JsonParserKind, Session};
use maxson_json::JsonValue;
use maxson_storage::file::WriteOptions;
use maxson_storage::{Cell, ColumnType, Field, Schema};
use maxson_testkit::prop::{check, Config, Gen};
use std::path::PathBuf;

fn bench_data_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("bench-data")
}

fn temp_root(name: &str) -> PathBuf {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .subsec_nanos();
    std::env::temp_dir().join(format!("maxson-td-{}-{nanos}-{name}", std::process::id()))
}

/// Every discrete-work counter, including the LRU telemetry. Timing
/// gauges are excluded (they legitimately vary run to run).
fn work_counters(m: &ExecMetrics) -> [u64; 11] {
    [
        m.rows_scanned,
        m.bytes_read,
        m.parse_calls,
        m.docs_parsed,
        m.cache_hits,
        m.row_groups_skipped,
        m.row_groups_read,
        m.prefilter_dropped,
        m.lru_hits,
        m.lru_misses,
        m.lru_evictions,
    ]
}

fn assert_traced_equals_untraced(
    mut make_session: impl FnMut() -> Session,
    sql: &str,
    label: &str,
) {
    let untraced_session = make_session();
    let untraced = untraced_session
        .execute(sql)
        .unwrap_or_else(|e| panic!("[{label}] untraced run failed for {sql}: {e}"));
    let traced_session = make_session();
    traced_session.set_trace_enabled(true);
    let traced = traced_session
        .execute(sql)
        .unwrap_or_else(|e| panic!("[{label}] traced run failed for {sql}: {e}"));
    assert!(
        !traced_session.tracer().snapshot().spans.is_empty(),
        "[{label}] traced run recorded no spans (vacuous differential)"
    );
    assert_eq!(
        untraced.rows, traced.rows,
        "[{label}] tracing changed rows for {sql}"
    );
    assert_eq!(
        untraced.to_display_string(),
        traced.to_display_string(),
        "[{label}] tracing changed rendered output for {sql}"
    );
    assert_eq!(
        work_counters(&untraced.metrics),
        work_counters(&traced.metrics),
        "[{label}] tracing changed work counters for {sql}: \
         untraced {:?} vs traced {:?}",
        untraced.metrics,
        traced.metrics
    );
}

#[test]
fn golden_queries_unchanged_by_tracing_both_parsers_both_thread_counts() {
    let root = bench_data_root();
    let queries = [
        "select get_json_object(payload, '$.f0') as f0, \
         get_json_object(payload, '$.f1') as f1 from mydb.q1",
        "select get_json_object(payload, '$.f0') as f0, \
         get_json_object(payload, '$.f10') as f10 from mydb.q2",
        "select get_json_object(payload, '$.f0') as f0 \
         from mydb.q1 where get_json_object(payload, '$.f0') > 900",
    ];
    for parser in [JsonParserKind::Jackson, JsonParserKind::Mison] {
        for threads in [1usize, 4] {
            let make = || {
                let mut session = Session::open(&root).unwrap();
                session.set_parser_kind(parser);
                session.set_threads(Some(threads));
                let rewriter = MaxsonScanRewriter::open(&root).unwrap();
                session.set_scan_rewriter(Some(Box::new(rewriter)));
                session
            };
            for sql in queries {
                assert_traced_equals_untraced(make, sql, &format!("{parser:?}/{threads}t"));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Property test: random tables x random JSON queries, tracing on/off
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Scenario {
    table_seed: u64,
    splits: usize,
    rows_per_split: usize,
    query: usize,
    threads: usize,
    mison: bool,
}

const NUM_QUERIES: usize = 4;

fn scenario_gen() -> Gen<Scenario> {
    let base = Gen::tuple2(
        Gen::tuple2(Gen::u64_any(), Gen::usize_in(1..=6)),
        Gen::tuple2(
            Gen::tuple2(Gen::usize_in(1..=16), Gen::usize_in(0..=NUM_QUERIES - 1)),
            Gen::tuple2(Gen::usize_in(1..=4), Gen::usize_in(0..=1)),
        ),
    );
    base.map(
        |((table_seed, splits), ((rows_per_split, query), (threads, mison)))| Scenario {
            table_seed,
            splits,
            rows_per_split,
            query,
            threads,
            mison: mison == 1,
        },
    )
}

fn scenario_sql(s: &Scenario) -> &'static str {
    match s.query {
        0 => "select id, get_json_object(payload, '$.a') as a from db.t",
        1 => {
            "select get_json_object(payload, '$.b.c') as bc from db.t \
             where get_json_object(payload, '$.a') >= 10"
        }
        2 => {
            "select count(*), sum(get_json_object(payload, '$.a')) from db.t \
             where id < 40"
        }
        3 => {
            "select get_json_object(payload, '$.tag') as tag, count(*) from db.t \
             group by get_json_object(payload, '$.tag') \
             order by get_json_object(payload, '$.tag')"
        }
        _ => unreachable!(),
    }
}

fn build_scenario_table(s: &Scenario, root: &PathBuf) -> Session {
    let mut session = Session::open(root).unwrap();
    let schema = Schema::new(vec![
        Field::new("id", ColumnType::Int64),
        Field::new("payload", ColumnType::Utf8),
    ])
    .unwrap();
    let mut catalog = session.catalog_mut();
    let table = catalog.create_table("db", "t", schema, 0).unwrap();
    let mut rng = maxson_testkit::rng::Rng::seed_from_u64(s.table_seed);
    let mut n = 0i64;
    for _ in 0..s.splits {
        let rows: Vec<Vec<Cell>> = (0..s.rows_per_split)
            .map(|_| {
                let a = rng.gen_range(0..=30);
                let c = rng.gen_range(-5..=5);
                let tag = rng.gen_range(0..=2u32);
                let row = vec![
                    Cell::Int(n),
                    Cell::from(format!(
                        r#"{{"a": {a}, "b": {{"c": {c}}}, "tag": "t{tag}"}}"#
                    )),
                ];
                n += 1;
                row
            })
            .collect();
        table
            .append_file(
                &rows,
                WriteOptions {
                    row_group_size: 4,
                    ..Default::default()
                },
                1,
            )
            .unwrap();
    }
    drop(catalog);
    session
}

#[test]
fn property_tracing_never_changes_rows_or_counters() {
    let cfg = Config::with_cases(24);
    check(
        "tracing_on_off_differential",
        &cfg,
        &scenario_gen(),
        |scenario| {
            let root = temp_root(&format!("prop-{}", scenario.table_seed));
            {
                let _ = build_scenario_table(scenario, &root);
            }
            let sql = scenario_sql(scenario);
            let make = || {
                let mut session = Session::open(&root).unwrap();
                session.set_threads(Some(scenario.threads));
                if scenario.mison {
                    session.set_parser_kind(JsonParserKind::Mison);
                }
                session
            };
            let untraced = make().execute(sql).map_err(|e| format!("untraced: {e}"))?;
            let traced_session = make();
            traced_session.set_trace_enabled(true);
            let traced = traced_session
                .execute(sql)
                .map_err(|e| format!("traced: {e}"))?;
            maxson_testkit::prop_assert_eq!(&traced.rows, &untraced.rows);
            maxson_testkit::prop_assert_eq!(
                work_counters(&traced.metrics),
                work_counters(&untraced.metrics)
            );
            std::fs::remove_dir_all(&root).ok();
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Chrome trace export: structure of the emitted file
// ---------------------------------------------------------------------

#[test]
fn chrome_export_nests_spans_on_named_thread_tracks() {
    let root = temp_root("export");
    let mut session = Session::open(&root).unwrap();
    let schema = Schema::new(vec![
        Field::new("id", ColumnType::Int64),
        Field::new("payload", ColumnType::Utf8),
    ])
    .unwrap();
    let mut catalog = session.catalog_mut();
    let table = catalog.create_table("db", "t", schema, 0).unwrap();
    for f in 0..4i64 {
        let rows: Vec<Vec<Cell>> = (0..12)
            .map(|i| {
                let n = f * 12 + i;
                vec![Cell::Int(n), Cell::from(format!(r#"{{"a": {n}}}"#))]
            })
            .collect();
        table
            .append_file(&rows, WriteOptions::default(), 1)
            .unwrap();
    }
    drop(catalog);
    session.set_threads(Some(4));
    let trace_path = root.join("trace.json");
    session.set_trace_path(Some(trace_path.clone()));
    session
        .execute("select id, get_json_object(payload, '$.a') as a from db.t")
        .unwrap();

    let text = std::fs::read_to_string(&trace_path).unwrap();
    let doc = maxson_json::parse(&text).expect("export is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");

    let mut span_ids = Vec::new();
    let mut span_tids = Vec::new();
    let mut named_tids = Vec::new();
    let mut parents = Vec::new();
    for e in events {
        match e.get("ph").and_then(JsonValue::as_str) {
            Some("X") => {
                let args = e.get("args").expect("span args");
                span_ids.push(args.get("id").and_then(JsonValue::as_i64).expect("span id"));
                span_tids.push(e.get("tid").and_then(JsonValue::as_i64).expect("tid"));
                if let Some(p) = args.get("parent").and_then(JsonValue::as_i64) {
                    parents.push(p);
                }
            }
            Some("M") => {
                assert_eq!(
                    e.get("name").and_then(JsonValue::as_str),
                    Some("thread_name")
                );
                named_tids.push(e.get("tid").and_then(JsonValue::as_i64).expect("meta tid"));
            }
            _ => {}
        }
    }
    assert!(!span_ids.is_empty(), "no spans exported");
    assert!(!parents.is_empty(), "no nested spans exported");
    for p in &parents {
        assert!(span_ids.contains(p), "parent id {p} has no span event");
    }
    // Every span sits on a track that carries a thread_name metadata event,
    // and the 4-way parallel scan put spans on more than one track.
    for tid in &span_tids {
        assert!(named_tids.contains(tid), "tid {tid} has no thread_name");
    }
    let mut distinct = span_tids.clone();
    distinct.sort_unstable();
    distinct.dedup();
    assert!(
        distinct.len() > 1,
        "parallel run exported a single track: {span_tids:?}"
    );
    // Worker tracks carry the pool's stable thread names.
    assert!(
        text.contains("maxson-pool-"),
        "no named pool worker tracks in export"
    );
    std::fs::remove_dir_all(&root).ok();
}
