//! Snapshot consistency: a midnight cycle swapping the Maxson cache tables
//! in must be atomic from every concurrent query's point of view.
//!
//! Clients hammer the server while the admin session (a clone sharing the
//! warehouse) runs `run_midnight_cycle`, which installs the freshly built
//! cache via an epoch swap. Every served result must
//!
//! * carry exactly the old or the new epoch — never anything else,
//! * render byte-identically to the serial reference (the cache changes
//!   where values come from, not what they are), and
//! * correlate epoch with provenance: new-epoch results are served from
//!   the cache (zero parse calls), old-epoch results from raw JSON
//!   (non-zero parse calls). A mixed-epoch read would break exactly this
//!   correlation.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use maxson::mpjp::PredictorKind;
use maxson::{MaxsonPipeline, PipelineConfig};
use maxson_engine::Session;
use maxson_server::{Client, Server, ServerConfig};
use maxson_storage::file::WriteOptions;
use maxson_storage::{Cell, ColumnType, Field, Schema};
use maxson_trace::model::RecurrenceClass;
use maxson_trace::{JsonPathLocation, QueryRecord};

const SQL: &str = "select id, get_json_object(payload, '$.a') as a from db.t";
const CLIENTS: usize = 6;

fn temp_root(name: &str) -> PathBuf {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .subsec_nanos();
    std::env::temp_dir().join(format!("maxson-snap-{}-{nanos}-{name}", std::process::id()))
}

/// Warehouse with a JSON table plus the query history that makes the
/// midnight cycle cache `$.a` — but without running the cycle yet.
fn warehouse_with_history(name: &str) -> (Session, Vec<QueryRecord>, PathBuf) {
    let root = temp_root(name);
    let mut session = Session::open(&root).unwrap();
    let schema = Schema::new(vec![
        Field::new("id", ColumnType::Int64),
        Field::new("payload", ColumnType::Utf8),
    ])
    .unwrap();
    let mut catalog = session.catalog_mut();
    let t = catalog.create_table("db", "t", schema, 0).unwrap();
    let rows: Vec<Vec<Cell>> = (0..40)
        .map(|i| vec![Cell::Int(i), Cell::from(format!(r#"{{"a": {i}}}"#))])
        .collect();
    t.append_file(
        &rows,
        WriteOptions {
            row_group_size: 10,
            ..Default::default()
        },
        1,
    )
    .unwrap();
    drop(catalog);
    let history: Vec<QueryRecord> = (0..10u32)
        .flat_map(|day| {
            (0..2u32).map(move |user| QueryRecord {
                query_id: u64::from(day * 2 + user),
                user_id: user,
                day,
                hour: 9,
                recurrence: RecurrenceClass::Daily,
                paths: vec![JsonPathLocation::new("db", "t", "payload", "$.a")],
            })
        })
        .collect();
    (session, history, root)
}

/// One served query as a client saw it.
struct Observation {
    epoch: u64,
    parse_calls: u64,
    display: String,
}

#[test]
fn midnight_cycle_is_an_atomic_epoch_swap_under_load() {
    let (template, history, root) = warehouse_with_history("swap");
    let mut admin = template.clone();
    let e0 = admin.epoch();
    let reference = admin.execute(SQL).unwrap();
    assert!(
        reference.metrics.parse_calls > 0,
        "pre-cycle queries must parse raw JSON"
    );
    let reference_display = reference.to_display_string();

    let mut server = Server::serve(
        template,
        "127.0.0.1:0",
        ServerConfig {
            threads: Some(2),
            permits: Some(4),
            result_cache_mb: None,
        },
    )
    .unwrap();
    let addr = server.addr();

    // Clients loop until told to stop, then take two guaranteed
    // post-cycle samples each.
    let cycle_done = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let cycle_done = cycle_done.clone();
            std::thread::spawn(move || -> Vec<Observation> {
                let mut client = Client::connect(addr).expect("connect");
                let mut seen = Vec::new();
                let mut post_cycle = 0;
                while post_cycle < 2 {
                    if cycle_done.load(Ordering::SeqCst) {
                        post_cycle += 1;
                    }
                    let result = client.query(SQL).expect("query");
                    seen.push(Observation {
                        epoch: result.epoch,
                        parse_calls: result.metrics.parse_calls,
                        display: result.to_display_string(),
                    });
                }
                seen
            })
        })
        .collect();

    // Run the midnight cycle on the admin clone while queries are in
    // flight: builds the cache tables off to the side, then swaps them in.
    let mut pipeline = MaxsonPipeline::new(
        &root,
        PipelineConfig {
            predictor: PredictorKind::RepeatYesterday,
            ..Default::default()
        },
    );
    pipeline.observe(history.iter());
    pipeline
        .run_midnight_cycle(&mut admin, &history, 8, 100)
        .unwrap();
    let e1 = admin.epoch();
    assert_eq!(e1, e0 + 1, "one cycle, one epoch bump");
    cycle_done.store(true, Ordering::SeqCst);

    // The cache must reproduce the raw results exactly.
    let post = admin.execute(SQL).unwrap();
    assert_eq!(post.metrics.parse_calls, 0, "cache must serve the path");
    assert_eq!(post.to_display_string(), reference_display);

    let mut old_seen = 0u64;
    let mut new_seen = 0u64;
    for worker in workers {
        for obs in worker.join().expect("client worker") {
            assert!(
                obs.epoch == e0 || obs.epoch == e1,
                "impossible epoch {} (old {e0}, new {e1})",
                obs.epoch
            );
            assert_eq!(
                obs.display, reference_display,
                "results diverged at epoch {}",
                obs.epoch
            );
            // Epoch and provenance must swap together: new epoch means
            // cache-served (no parsing), old epoch means raw JSON.
            if obs.epoch == e1 {
                new_seen += 1;
                assert_eq!(
                    obs.parse_calls, 0,
                    "new-epoch result parsed raw JSON: torn snapshot"
                );
            } else {
                old_seen += 1;
                assert!(
                    obs.parse_calls > 0,
                    "old-epoch result with zero parse calls: torn snapshot"
                );
            }
        }
    }
    // The forced post-cycle samples guarantee both sides are exercised.
    assert!(old_seen > 0, "no query observed the pre-swap warehouse");
    assert!(
        new_seen >= (CLIENTS * 2) as u64,
        "post-cycle samples missing"
    );

    // New connections see the new epoch immediately.
    let stats = Client::connect(addr).unwrap().stats().unwrap();
    assert_eq!(stats.epoch, e1);
    server.stop();
    std::fs::remove_dir_all(&root).ok();
}

/// Epoch swaps with the reuse cache on, and with *detectably different*
/// data on each side of the swap: the table grows and its values change
/// before the admin bumps the epoch, so any reuse entry leaking across
/// the swap would serve a visibly wrong answer. Every new-epoch result
/// must reflect the new data, and post-swap repeats must still be served
/// from the cache (the swap invalidates, it does not disable).
#[test]
fn reuse_cache_never_serves_stale_results_across_an_epoch_swap() {
    const COUNT_SQL: &str =
        "select count(*) as n, max(get_json_object(payload, '$.v')) as vmax from db.t";

    let root = temp_root("reuse-swap");
    let mut admin = Session::open(&root).unwrap();
    let schema = Schema::new(vec![
        Field::new("id", ColumnType::Int64),
        Field::new("payload", ColumnType::Utf8),
    ])
    .unwrap();
    {
        let mut catalog = admin.catalog_mut();
        let t = catalog.create_table("db", "t", schema, 0).unwrap();
        let rows: Vec<Vec<Cell>> = (0..40)
            .map(|i| vec![Cell::Int(i), Cell::from(format!(r#"{{"v": 1, "a": {i}}}"#))])
            .collect();
        t.append_file(
            &rows,
            WriteOptions {
                row_group_size: 10,
                ..Default::default()
            },
            1,
        )
        .unwrap();
    }
    let old_reference = admin.execute(COUNT_SQL).unwrap().to_display_string();

    let mut server = Server::serve(
        admin.clone(),
        "127.0.0.1:0",
        ServerConfig {
            threads: Some(2),
            permits: Some(4),
            result_cache_mb: Some(16),
        },
    )
    .unwrap();
    let addr = server.addr();
    let e0 = admin.epoch();

    let cycle_done = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let cycle_done = cycle_done.clone();
            std::thread::spawn(move || -> Vec<(u64, String)> {
                let mut client = Client::connect(addr).expect("connect");
                let mut seen = Vec::new();
                let mut post_cycle = 0;
                while post_cycle < 2 {
                    if cycle_done.load(Ordering::SeqCst) {
                        post_cycle += 1;
                    }
                    let result = client.query(COUNT_SQL).expect("query");
                    seen.push((result.epoch, result.to_display_string()));
                }
                seen
            })
        })
        .collect();

    // Let the clients warm the cache on the old epoch first.
    std::thread::sleep(std::time::Duration::from_millis(150));

    // Change the world, then swap: more rows, different values. The swap
    // is what publishes the change — old-epoch reuse entries must die
    // with it.
    {
        let mut catalog = admin.catalog_mut();
        let t = catalog.table_mut("db", "t").unwrap();
        let rows: Vec<Vec<Cell>> = (40..50)
            .map(|i| vec![Cell::Int(i), Cell::from(format!(r#"{{"v": 2, "a": {i}}}"#))])
            .collect();
        t.append_file(&rows, WriteOptions::default(), 2).unwrap();
    }
    let e1 = admin.swap_warehouse_epoch(None).unwrap();
    assert_eq!(e1, e0 + 1);
    cycle_done.store(true, Ordering::SeqCst);

    let new_reference = admin.execute(COUNT_SQL).unwrap().to_display_string();
    assert_ne!(
        new_reference, old_reference,
        "the swap must be detectable, or this test proves nothing"
    );

    let mut old_seen = 0u64;
    let mut new_seen = 0u64;
    for worker in workers {
        for (epoch, display) in worker.join().expect("client worker") {
            assert!(epoch == e0 || epoch == e1, "impossible epoch {epoch}");
            if epoch == e1 {
                new_seen += 1;
                // The stale-hit smoking gun would be a new-epoch result
                // rendering the old data.
                assert_eq!(
                    display, new_reference,
                    "stale reuse entry crossed the epoch swap"
                );
            } else {
                old_seen += 1;
            }
        }
    }
    assert!(old_seen > 0, "no query observed the pre-swap warehouse");
    assert!(
        new_seen >= (CLIENTS * 2) as u64,
        "post-swap samples missing"
    );

    // Non-vacuous: post-swap repeats are still cache-served — the swap
    // invalidated the old entries without taking the cache out of service.
    let mut prober = Client::connect(addr).unwrap();
    let hits_before = prober.stats().unwrap().reuse_hits;
    for _ in 0..3 {
        let result = prober.query(COUNT_SQL).unwrap();
        assert_eq!(result.epoch, e1);
        assert_eq!(result.to_display_string(), new_reference);
    }
    let after = prober.stats().unwrap();
    assert!(
        after.reuse_hits > hits_before,
        "post-swap repeats must hit the refilled cache"
    );
    assert!(after.reuse_bytes > 0, "refilled entries must be resident");
    server.stop();
    std::fs::remove_dir_all(&root).ok();
}
