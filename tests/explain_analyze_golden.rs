//! Golden tests for `EXPLAIN ANALYZE`.
//!
//! The rendered span tree must be deterministic across thread counts: the
//! same operator lines, the same per-split rows and counter deltas, the
//! same child order. Only the `wall=` timing tokens vary run to run, so
//! they (and the warehouse path inside provider labels) are normalized
//! before comparison.

use maxson::rewriter::MaxsonScanRewriter;
use maxson_engine::session::Session;
use maxson_storage::file::WriteOptions;
use maxson_storage::{Cell, ColumnType, Field, Schema};
use std::path::{Path, PathBuf};

fn bench_data_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("bench-data")
}

fn temp_root(name: &str) -> PathBuf {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .subsec_nanos();
    std::env::temp_dir().join(format!("maxson-ea-{}-{nanos}-{name}", std::process::id()))
}

/// Join the result rows (one `Cell::Str` line each) and normalize the two
/// nondeterministic parts: `wall=<duration>` tokens and the warehouse path
/// embedded in provider labels.
fn normalized(result: &maxson_engine::QueryResult, root: &Path) -> String {
    let text: String = result
        .rows
        .iter()
        .map(|r| match &r[0] {
            Cell::Str(s) => s.clone(),
            other => panic!("explain analyze rows must be strings: {other:?}"),
        })
        .collect::<Vec<_>>()
        .join("\n");
    let text = text.replace(&root.display().to_string(), "<root>");
    text.lines()
        .map(|line| {
            line.split(' ')
                .map(|tok| {
                    if tok.starts_with("wall=") {
                        "wall=_"
                    } else {
                        tok
                    }
                })
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn run_explain_analyze(session: &Session, sql: &str, root: &Path) -> String {
    let result = session
        .execute(&format!("explain analyze {sql}"))
        .unwrap_or_else(|e| panic!("explain analyze failed for {sql}: {e}"));
    assert_eq!(result.columns, vec!["explain analyze".to_string()]);
    normalized(&result, root)
}

/// Two-split table with plain columns only, so the golden text is
/// independent of the JSON parser and shared-parse mode.
fn two_split_table(name: &str) -> PathBuf {
    let root = temp_root(name);
    let mut session = Session::open(&root).unwrap();
    let schema = Schema::new(vec![
        Field::new("id", ColumnType::Int64),
        Field::new("tag", ColumnType::Utf8),
    ])
    .unwrap();
    let mut catalog = session.catalog_mut();
    let t = catalog.create_table("db", "t", schema, 0).unwrap();
    for f in 0..2i64 {
        let rows: Vec<Vec<Cell>> = (0..10)
            .map(|i| {
                let n = f * 10 + i;
                vec![Cell::Int(n), Cell::from(format!("g{}", n % 3))]
            })
            .collect();
        t.append_file(
            &rows,
            WriteOptions {
                row_group_size: 5,
                ..Default::default()
            },
            1,
        )
        .unwrap();
    }
    drop(catalog);
    root
}

const GOLDEN: &str = "\
query wall=_ rows=3
  planning wall=_
  sort wall=_ rows_in=3
    project wall=_ rows_in=3 rows_out=3
      scan_pipeline wall=_ label=NorcScan(<root>/db/t, cols=[0, 1], sarg) stages=scan+filter+agg splits=2 rows_out=3
        split wall=_ split=0 rows_scanned=5 bytes_read=50 rg_read=1 rg_skipped=1 cells_materialized=10
        split wall=_ split=1 rows_scanned=10 bytes_read=100 rg_read=2 cells_materialized=20";

#[test]
fn golden_tree_exact_at_one_and_four_threads() {
    let root = two_split_table("golden");
    let mut session = Session::open(&root).unwrap();
    let sql = "select tag, count(*) from db.t where id >= 5 group by tag order by tag";
    for threads in [1usize, 4] {
        session.set_threads(Some(threads));
        let text = run_explain_analyze(&session, sql, &root);
        assert_eq!(
            text, GOLDEN,
            "explain analyze drifted at {threads} threads:\n{text}"
        );
    }
    std::fs::remove_dir_all(&root).ok();
}

/// Maxson-rewritten JSON queries over the checked-in warehouse: the
/// normalized tree must be identical at 1 and 4 threads (same shape, same
/// rows, same counter deltas, split children in split order).
#[test]
fn rewritten_queries_deterministic_across_threads() {
    let root = bench_data_root();
    let queries = [
        "select get_json_object(payload, '$.f0') as f0, \
         get_json_object(payload, '$.f1') as f1 from mydb.q1",
        "select get_json_object(payload, '$.f0') as f0, \
         get_json_object(payload, '$.f10') as f10 from mydb.q2",
        "select get_json_object(payload, '$.f0') as f0 \
         from mydb.q1 where get_json_object(payload, '$.f0') > 900",
    ];
    for sql in queries {
        let make = || {
            let mut session = Session::open(&root).unwrap();
            let rewriter = MaxsonScanRewriter::open(&root).unwrap();
            session.set_scan_rewriter(Some(Box::new(rewriter)));
            session
        };
        let mut reference_session = make();
        reference_session.set_threads(Some(1));
        let reference = run_explain_analyze(&reference_session, sql, &root);
        assert!(
            reference.contains("scan_pipeline"),
            "no pipeline span for {sql}:\n{reference}"
        );
        assert!(
            reference.contains("split="),
            "no split spans for {sql}:\n{reference}"
        );
        let mut session = make();
        session.set_threads(Some(4));
        let parallel = run_explain_analyze(&session, sql, &root);
        assert_eq!(
            parallel, reference,
            "explain analyze differs between 1 and 4 threads for {sql}"
        );
    }
}

/// The plain `EXPLAIN` (no ANALYZE) path still renders the logical plan.
#[test]
fn plain_explain_still_renders_plan() {
    let root = two_split_table("plainexplain");
    let session = Session::open(&root).unwrap();
    let result = session.execute("explain select id from db.t").unwrap();
    assert_eq!(result.columns, vec!["plan".to_string()]);
    let text = result.to_display_string();
    assert!(text.contains("Scan"), "no scan node:\n{text}");
    assert!(!text.contains("wall="), "EXPLAIN must not execute:\n{text}");
    std::fs::remove_dir_all(&root).ok();
}
