//! Determinism pins for everything built on the testkit PRNG: the same
//! seed must yield byte-identical output across runs, or replayable
//! failure seeds and the regenerable `bench-data/` warehouse stop meaning
//! anything.

use maxson_datagen::tables::{load_workload_tables, WorkloadConfig};
use maxson_datagen::NobenchGenerator;
use maxson_storage::Catalog;
use maxson_trace::{SynthConfig, TraceSynthesizer};
use std::path::PathBuf;

fn temp_root(name: &str) -> PathBuf {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .subsec_nanos();
    std::env::temp_dir().join(format!("maxson-det-{}-{nanos}-{name}", std::process::id()))
}

#[test]
fn trace_synthesis_is_deterministic_per_seed() {
    let cfg = SynthConfig {
        days: 10,
        users: 20,
        ..Default::default()
    };
    let a = TraceSynthesizer::new(cfg.clone()).generate();
    let b = TraceSynthesizer::new(cfg.clone()).generate();
    assert_eq!(a.queries, b.queries, "query stream diverged");
    assert_eq!(a.updates, b.updates, "update stream diverged");
    assert_eq!(a.universe, b.universe, "path universe diverged");

    // A different seed must actually change the stream.
    let c = TraceSynthesizer::new(SynthConfig {
        seed: cfg.seed + 1,
        ..cfg
    })
    .generate();
    assert_ne!(a.queries, c.queries, "seed has no effect on the trace");
}

#[test]
fn nobench_generation_is_deterministic_per_seed() {
    let a = NobenchGenerator::new(7).records(200);
    let b = NobenchGenerator::new(7).records(200);
    assert_eq!(a, b, "nobench records diverged for the same seed");

    let c = NobenchGenerator::new(8).records(200);
    assert_ne!(a, c, "seed has no effect on nobench records");
}

#[test]
fn workload_tables_are_deterministic_per_seed() {
    let cfg = WorkloadConfig {
        rows_per_table: 60,
        files_per_table: 2,
        row_group_size: 10,
        ..Default::default()
    };
    let mut snapshots: Vec<Vec<(String, Vec<Vec<maxson_storage::Cell>>)>> = Vec::new();
    for run in 0..2 {
        let root = temp_root(&format!("workload-{run}"));
        let mut catalog = Catalog::open(&root).unwrap();
        load_workload_tables(&mut catalog, &cfg).unwrap();
        let mut tables = Vec::new();
        for spec in maxson_datagen::table_specs() {
            let table = catalog.table(&cfg.database, spec.name).unwrap();
            let mut rows = Vec::new();
            for split in 0..table.file_count() {
                rows.extend(table.open_split(split).unwrap().read_all_rows().unwrap());
            }
            tables.push((spec.name.to_string(), rows));
        }
        snapshots.push(tables);
        std::fs::remove_dir_all(&root).ok();
    }
    let second = snapshots.pop().unwrap();
    let first = snapshots.pop().unwrap();
    for ((name_a, rows_a), (name_b, rows_b)) in first.iter().zip(&second) {
        assert_eq!(name_a, name_b);
        assert_eq!(rows_a, rows_b, "table {name_a} diverged between runs");
    }
}
