//! Differential tests for the zero-copy batched scan pipeline.
//!
//! The scan→execute boundary now hands column-major batches (with optional
//! prefilter selection vectors) to the pipeline, which materializes row
//! cells late — predicate columns first, the rest only for surviving rows —
//! over shared `Arc<str>` buffers. All of that must be invisible: rows,
//! rendered output, every work counter, and the `EXPLAIN ANALYZE` tree must
//! be identical to the serial reference at 1 and 4 threads, under Jackson
//! and Mison, with shared-parse off and on.
//!
//! Three layers, mirroring `shared_parse_differential.rs`:
//!
//! 1. **Golden queries** — scan-only/scan+filter/scan+agg shapes over the
//!    checked-in warehouse, plus prefilter-eligible JSON equality
//!    predicates, across every thread × parser × shared-parse combination.
//! 2. **NoBench workload** — generated documents with missing fields and
//!    malformed records, same matrix.
//! 3. **Property test** — random tables (including NULL documents and
//!    multi-row-group splits that exercise SARG skipping) and random
//!    queries; failures replay via `MAXSON_TESTKIT_SEED`.

use maxson_datagen::NobenchGenerator;
use maxson_engine::metrics::ExecMetrics;
use maxson_engine::session::{JsonParserKind, Session};
use maxson_storage::file::WriteOptions;
use maxson_storage::{Cell, ColumnType, Field, Schema};
use maxson_testkit::prop::{check, Config, Gen};
use maxson_testkit::rng::Rng;
use std::path::{Path, PathBuf};

fn bench_data_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("bench-data")
}

fn temp_root(name: &str) -> PathBuf {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .subsec_nanos();
    std::env::temp_dir().join(format!("maxson-zc-{}-{nanos}-{name}", std::process::id()))
}

/// Every discrete-work counter the batched pipeline touches. `docs_parsed`
/// is excluded (it legitimately differs between shared-parse modes) and
/// checked for thread-invariance separately.
fn work_counters(m: &ExecMetrics) -> [u64; 9] {
    [
        m.rows_scanned,
        m.bytes_read,
        m.parse_calls,
        m.cache_hits,
        m.row_groups_skipped,
        m.row_groups_read,
        m.prefilter_dropped,
        m.cells_materialized,
        m.batch_rows_skipped,
    ]
}

/// Normalize an `EXPLAIN ANALYZE` rendering: strip wall-clock tokens and
/// the table root path (same scheme as tests/explain_analyze_golden.rs),
/// plus `docs_parsed=` — the one counter shared-parse mode legitimately
/// changes (its thread-invariance is asserted separately on the metrics) —
/// and the structural-kernel attrs (`simd=`, `bitmap_*=`), which only the
/// bitmap-building parsers emit; Jackson legitimately has none
/// (tests/kernel_differential.rs pins their semantics).
fn normalized_tree(session: &Session, sql: &str, root: &Path) -> String {
    let result = session
        .execute(&format!("explain analyze {sql}"))
        .unwrap_or_else(|e| panic!("explain analyze failed for {sql}: {e}"));
    let text: String = result
        .rows
        .iter()
        .map(|r| match &r[0] {
            Cell::Str(s) => s.to_string(),
            other => panic!("explain analyze rows must be strings: {other:?}"),
        })
        .collect::<Vec<_>>()
        .join("\n");
    let text = text.replace(&root.display().to_string(), "<root>");
    text.lines()
        .map(|line| {
            line.split(' ')
                .filter(|tok| !tok.starts_with("simd=") && !tok.starts_with("bitmap_"))
                .map(|tok| {
                    if tok.starts_with("wall=") {
                        "wall=_"
                    } else if tok.starts_with("docs_parsed=") {
                        "docs_parsed=_"
                    } else {
                        tok
                    }
                })
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Run `sql` on the serial Jackson shared-off reference and assert rows,
/// rendered output, work counters, and the explain-analyze tree are
/// identical across threads × parsers × shared-parse.
fn assert_zero_copy_differential(
    mut make_session: impl FnMut() -> Session,
    sql: &str,
    root: &Path,
    label: &str,
) {
    let mut reference_session = make_session();
    reference_session.set_parser_kind(JsonParserKind::Jackson);
    reference_session.set_threads(Some(1));
    reference_session.set_shared_parse(Some(false));
    let reference = reference_session
        .execute(sql)
        .unwrap_or_else(|e| panic!("[{label}] reference run failed for {sql}: {e}"));
    let reference_tree = normalized_tree(&reference_session, sql, root);

    for parser in [JsonParserKind::Jackson, JsonParserKind::Mison] {
        for shared in [false, true] {
            let mut docs: Option<u64> = None;
            for threads in [1usize, 4] {
                let mut session = make_session();
                session.set_parser_kind(parser);
                session.set_threads(Some(threads));
                session.set_shared_parse(Some(shared));
                let result = session.execute(sql).unwrap_or_else(|e| {
                    panic!("[{label}] run failed for {sql} ({parser:?}, shared={shared}, {threads} threads): {e}")
                });
                assert_eq!(
                    result.rows, reference.rows,
                    "[{label}] rows diverged for {sql} ({parser:?}, shared={shared}, {threads} threads)"
                );
                assert_eq!(
                    result.to_display_string(),
                    reference.to_display_string(),
                    "[{label}] rendered output diverged for {sql} ({parser:?}, shared={shared}, {threads} threads)"
                );
                assert_eq!(
                    work_counters(&result.metrics),
                    work_counters(&reference.metrics),
                    "[{label}] work counters diverged for {sql} ({parser:?}, shared={shared}, {threads} threads): \
                     {:?} vs reference {:?}",
                    result.metrics,
                    reference.metrics
                );
                // Late materialization is a per-row quantity: thread count
                // must not change how many cells were built or skipped.
                match docs {
                    None => docs = Some(result.metrics.docs_parsed),
                    Some(d) => assert_eq!(
                        result.metrics.docs_parsed, d,
                        "[{label}] docs_parsed not thread-invariant for {sql} ({parser:?}, shared={shared})"
                    ),
                }
                let tree = normalized_tree(&session, sql, root);
                assert_eq!(
                    tree, reference_tree,
                    "[{label}] explain analyze tree diverged for {sql} ({parser:?}, shared={shared}, {threads} threads)"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Golden queries over the checked-in warehouse
// ---------------------------------------------------------------------

/// The three scan shapes the zero-copy pipeline optimizes, plus JSON
/// predicates (late materialization under a parse-bearing filter) and a
/// projection over every column.
const WAREHOUSE_QUERIES: [&str; 6] = [
    "select id, date, payload from mydb.q1",
    "select id, payload from mydb.q1 where date <= 20190108",
    "select date, count(*) as n, sum(id) as s from mydb.q1 group by date",
    "select get_json_object(payload, '$.f0') as f0, \
     get_json_object(payload, '$.f1') as f1 from mydb.q1",
    "select get_json_object(payload, '$.f0') as f0 \
     from mydb.q1 where get_json_object(payload, '$.f0') > 900",
    "select count(*) from mydb.q2 where date > 20190102 and id < 1000",
];

#[test]
fn warehouse_queries_identical_across_batching_matrix() {
    let root = bench_data_root();
    for sql in WAREHOUSE_QUERIES {
        assert_zero_copy_differential(|| Session::open(&root).unwrap(), sql, &root, "warehouse");
    }
}

/// The Sparser-style prefilter now produces a selection vector instead of
/// dropping rows one at a time; it must stay invisible in results and
/// deterministic in the counters.
#[test]
fn prefilter_selection_vector_identical_across_matrix() {
    let root = temp_root("prefilter");
    let mut session = Session::open(&root).unwrap();
    let schema = Schema::new(vec![
        Field::new("id", ColumnType::Int64),
        Field::new("doc", ColumnType::Utf8),
    ])
    .unwrap();
    let mut catalog = session.catalog_mut();
    let table = catalog.create_table("db", "t", schema, 0).unwrap();
    for f in 0..3i64 {
        let rows: Vec<Vec<Cell>> = (0..40)
            .map(|i| {
                let n = f * 40 + i;
                let name = if n % 5 == 0 { "banana" } else { "apple" };
                vec![
                    Cell::Int(n),
                    Cell::from(format!(r#"{{"name": "{name}", "n": {n}}}"#)),
                ]
            })
            .collect();
        table
            .append_file(
                &rows,
                WriteOptions {
                    row_group_size: 8,
                    ..Default::default()
                },
                1,
            )
            .unwrap();
    }
    drop(catalog);
    let sql = "select id from db.t where get_json_object(doc, '$.name') = 'banana'";
    let make = || {
        let mut s = Session::open(&root).unwrap();
        s.set_prefilter_enabled(true);
        s
    };
    // Sanity: the prefilter actually fires on this shape.
    let mut probe = make();
    probe.set_threads(Some(1));
    let result = probe.execute(sql).unwrap();
    assert_eq!(result.rows.len(), 24);
    assert!(
        result.metrics.prefilter_dropped > 0,
        "prefilter never fired: {:?}",
        result.metrics
    );
    assert_eq!(
        result.metrics.batch_rows_skipped, result.metrics.prefilter_dropped,
        "every prefiltered row must be skipped before materialization"
    );
    assert_zero_copy_differential(make, sql, &root, "prefilter");
    std::fs::remove_dir_all(&root).ok();
}

// ---------------------------------------------------------------------
// NoBench workload
// ---------------------------------------------------------------------

#[test]
fn nobench_workload_identical_across_batching_matrix() {
    let root = temp_root("nobench");
    let mut session = Session::open(&root).unwrap();
    let schema = Schema::new(vec![
        Field::new("id", ColumnType::Int64),
        Field::new("payload", ColumnType::Utf8),
    ])
    .unwrap();
    let mut catalog = session.catalog_mut();
    let table = catalog.create_table("nb", "docs", schema, 0).unwrap();
    let mut generator = NobenchGenerator::new(7);
    for f in 0..4u64 {
        let rows: Vec<Vec<Cell>> = (f * 50..(f + 1) * 50)
            .map(|i| vec![Cell::Int(i as i64), Cell::from(generator.record_text(i))])
            .collect();
        table
            .append_file(
                &rows,
                WriteOptions {
                    row_group_size: 16,
                    ..Default::default()
                },
                1,
            )
            .unwrap();
    }
    drop(catalog);
    let queries = [
        // Raw-column predicate: rejected rows must not materialize payload.
        "select get_json_object(payload, '$.str1') as s1 from nb.docs where id < 60",
        // JSON predicate + projection sharing one parse.
        "select get_json_object(payload, '$.num') as num from nb.docs \
         where get_json_object(payload, '$.num') > 100",
        // Grouped aggregation: allocation-free keys must keep first-seen
        // group order at any thread count.
        "select get_json_object(payload, '$.str2') as grp, count(*), \
         sum(get_json_object(payload, '$.num')) from nb.docs \
         group by get_json_object(payload, '$.str2')",
        // Bare scan through a sort (non-segment shape above the scan).
        "select id from nb.docs order by get_json_object(payload, '$.num') limit 9",
    ];
    for sql in queries {
        assert_zero_copy_differential(|| Session::open(&root).unwrap(), sql, &root, "nobench");
    }
    std::fs::remove_dir_all(&root).ok();
}

// ---------------------------------------------------------------------
// Property test: random tables × random queries
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Scenario {
    table_seed: u64,
    splits: usize,
    rows_per_split: usize,
    query: usize,
    threshold: i64,
}

const NUM_QUERIES: usize = 5;

fn scenario_gen() -> Gen<Scenario> {
    let base = Gen::tuple2(
        Gen::tuple2(Gen::u64_any(), Gen::usize_in(1..=5)),
        Gen::tuple2(
            Gen::tuple2(Gen::usize_in(0..=20), Gen::usize_in(0..=NUM_QUERIES - 1)),
            Gen::i64_in(-50..=150),
        ),
    );
    base.map(
        |((table_seed, splits), ((rows_per_split, query), threshold))| Scenario {
            table_seed,
            splits,
            rows_per_split,
            query,
            threshold,
        },
    )
}

fn scenario_sql(s: &Scenario) -> String {
    let th = s.threshold;
    match s.query {
        // Raw predicate over a skippable column: SARG + late materialization.
        0 => format!("select id, doc from db.t where id >= {th}"),
        // JSON predicate: the filter column is the only one materialized
        // for rejected rows, and it carries the parse.
        1 => format!(
            "select get_json_object(doc, '$.x') as x from db.t \
             where get_json_object(doc, '$.x') < {th}"
        ),
        // Aggregation with JSON group key.
        2 => "select get_json_object(doc, '$.tag') as tag, count(*), \
              sum(get_json_object(doc, '$.x')) from db.t \
              group by get_json_object(doc, '$.tag')"
            .into(),
        // Scan-only projection.
        3 => "select doc, id from db.t".into(),
        // Raw predicate + JSON projection + distinct above the segment.
        _ => format!(
            "select distinct get_json_object(doc, '$.tag') as tag from db.t \
             where id > {th}"
        ),
    }
}

/// Random table with NULL documents, missing fields, and malformed records
/// (batch validity masks and parse-error paths all get exercised).
fn build_scenario_table(s: &Scenario, root: &PathBuf) -> Session {
    let mut session = Session::open(root).unwrap();
    let schema = Schema::new(vec![
        Field::new("id", ColumnType::Int64),
        Field::new("doc", ColumnType::Utf8),
    ])
    .unwrap();
    let mut catalog = session.catalog_mut();
    let table = catalog.create_table("db", "t", schema, 0).unwrap();
    let mut rng = Rng::seed_from_u64(s.table_seed);
    for _ in 0..s.splits {
        let rows: Vec<Vec<Cell>> = (0..s.rows_per_split)
            .map(|_| {
                let id = Cell::Int(rng.gen_range(-100..=100));
                let doc = if rng.gen_bool(0.08) {
                    Cell::Null
                } else if rng.gen_bool(0.05) {
                    Cell::from("{broken")
                } else {
                    let x = rng.gen_range(-100..=100);
                    let tag = rng.gen_range(0..=3u32);
                    if rng.gen_bool(0.1) {
                        Cell::from(format!(r#"{{"tag": "g{tag}"}}"#))
                    } else {
                        Cell::from(format!(r#"{{"x": {x}, "tag": "g{tag}"}}"#))
                    }
                };
                vec![id, doc]
            })
            .collect();
        table
            .append_file(
                &rows,
                WriteOptions {
                    row_group_size: 7,
                    ..Default::default()
                },
                1,
            )
            .unwrap();
    }
    drop(catalog);
    session
}

#[test]
fn property_random_queries_identical_across_batching_matrix() {
    let cfg = Config::with_cases(16);
    check(
        "zero_copy_batching_differential",
        &cfg,
        &scenario_gen(),
        |scenario| {
            let root = temp_root(&format!("prop-{}", scenario.table_seed));
            let mut reference_session = build_scenario_table(scenario, &root);
            let sql = scenario_sql(scenario);

            reference_session.set_parser_kind(JsonParserKind::Jackson);
            reference_session.set_threads(Some(1));
            reference_session.set_shared_parse(Some(false));
            let reference = reference_session
                .execute(&sql)
                .map_err(|e| format!("reference: {e}"))?;
            let reference_tree = normalized_tree(&reference_session, &sql, &root);

            for parser in [JsonParserKind::Jackson, JsonParserKind::Mison] {
                for shared in [false, true] {
                    for threads in [1usize, 4] {
                        let mut session = Session::open(&root).unwrap();
                        session.set_parser_kind(parser);
                        session.set_threads(Some(threads));
                        session.set_shared_parse(Some(shared));
                        let result = session.execute(&sql).map_err(|e| {
                            format!("{parser:?}, shared={shared}, {threads} threads: {e}")
                        })?;
                        maxson_testkit::prop_assert_eq!(&result.rows, &reference.rows);
                        maxson_testkit::prop_assert_eq!(
                            result.to_display_string(),
                            reference.to_display_string()
                        );
                        maxson_testkit::prop_assert_eq!(
                            work_counters(&result.metrics),
                            work_counters(&reference.metrics)
                        );
                        maxson_testkit::prop_assert_eq!(
                            normalized_tree(&session, &sql, &root),
                            reference_tree.clone()
                        );
                    }
                }
            }
            std::fs::remove_dir_all(&root).ok();
            Ok(())
        },
    );
}
