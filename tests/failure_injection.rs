//! Failure-injection tests: corruption, truncation, and concurrent-update
//! hazards must surface as errors (or safe fallbacks), never as wrong
//! results. Malformed JSON *payloads* are data, not failures: every parser
//! mode must keep executing (`Ok`, null cells, no panic) when a document
//! is truncated or byte-mutated, and the tape parser must agree with the
//! Jackson reference row-for-row on what malformed documents yield.

use maxson::mpjp::PredictorKind;
use maxson::rewriter::MaxsonScanRewriter;
use maxson::{CacheRegistry, MaxsonPipeline, PipelineConfig};
use maxson_engine::session::{JsonParserKind, Session};
use maxson_storage::file::WriteOptions;
use maxson_storage::{Catalog, Cell, ColumnType, Field, Schema};
use maxson_testkit::corpus;
use maxson_testkit::prop::{check, Config, Gen};
use maxson_testkit::Rng;
use maxson_trace::model::RecurrenceClass;
use maxson_trace::{JsonPathLocation, QueryRecord};
use std::path::PathBuf;

fn temp_root(name: &str) -> PathBuf {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .subsec_nanos();
    std::env::temp_dir().join(format!("maxson-fail-{}-{nanos}-{name}", std::process::id()))
}

fn cached_session(name: &str) -> (Session, PathBuf) {
    let root = temp_root(name);
    let mut session = Session::open(&root).unwrap();
    let schema = Schema::new(vec![
        Field::new("id", ColumnType::Int64),
        Field::new("payload", ColumnType::Utf8),
    ])
    .unwrap();
    let mut catalog = session.catalog_mut();
    let t = catalog.create_table("db", "t", schema, 0).unwrap();
    let rows: Vec<Vec<Cell>> = (0..40)
        .map(|i| vec![Cell::Int(i), Cell::from(format!(r#"{{"a": {i}}}"#))])
        .collect();
    t.append_file(
        &rows,
        WriteOptions {
            row_group_size: 10,
            ..Default::default()
        },
        1,
    )
    .unwrap();
    let history: Vec<QueryRecord> = (0..10u32)
        .flat_map(|day| {
            (0..2u32).map(move |user| QueryRecord {
                query_id: u64::from(day * 2 + user),
                user_id: user,
                day,
                hour: 9,
                recurrence: RecurrenceClass::Daily,
                paths: vec![JsonPathLocation::new("db", "t", "payload", "$.a")],
            })
        })
        .collect();
    drop(catalog);
    let mut pipeline = MaxsonPipeline::new(
        &root,
        PipelineConfig {
            predictor: PredictorKind::RepeatYesterday,
            ..Default::default()
        },
    );
    pipeline.observe(history.iter());
    pipeline
        .run_midnight_cycle(&mut session, &history, 8, 100)
        .unwrap();
    (session, root)
}

const SQL: &str = "select get_json_object(payload, '$.a') as a from db.t";

#[test]
fn corrupt_cache_file_fails_loudly_not_wrong() {
    let (session, root) = cached_session("corrupt-cache");
    // Sanity: cache serves.
    let ok = session.execute(SQL).unwrap();
    assert_eq!(ok.metrics.parse_calls, 0);

    // Flip bytes in the middle of the cache part file.
    let cache_file = root
        .join("__maxson_cache")
        .join("db__t")
        .join("part-00000.norc");
    let mut bytes = std::fs::read(&cache_file).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    bytes[mid + 1] ^= 0xff;
    std::fs::write(&cache_file, &bytes).unwrap();

    // A fresh session + rewriter must surface the corruption as an error —
    // never silently return stale/garbage values.
    let mut s2 = Session::open(&root).unwrap();
    let rw = MaxsonScanRewriter::open(&root).unwrap();
    s2.set_scan_rewriter(Some(Box::new(rw)));
    let result = s2.execute(SQL);
    assert!(result.is_err(), "corrupt cache file must error");
    let msg = result.unwrap_err().to_string();
    assert!(
        msg.contains("corrupt") || msg.contains("checksum"),
        "unexpected error: {msg}"
    );
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn truncated_cache_file_detected() {
    let (_, root) = cached_session("truncated-cache");
    let cache_file = root
        .join("__maxson_cache")
        .join("db__t")
        .join("part-00000.norc");
    let bytes = std::fs::read(&cache_file).unwrap();
    std::fs::write(&cache_file, &bytes[..bytes.len() / 2]).unwrap();
    let mut s2 = Session::open(&root).unwrap();
    let rw = MaxsonScanRewriter::open(&root).unwrap();
    s2.set_scan_rewriter(Some(Box::new(rw)));
    assert!(s2.execute(SQL).is_err());
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn corrupt_registry_is_an_error_not_a_silent_miss() {
    let (_, root) = cached_session("bad-registry");
    std::fs::write(
        root.join("__maxson_cache").join("registry.json"),
        "{not valid json",
    )
    .unwrap();
    assert!(MaxsonScanRewriter::open(&root).is_err());
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn missing_registry_means_no_rewrites() {
    let (_, root) = cached_session("no-registry");
    std::fs::remove_file(root.join("__maxson_cache").join("registry.json")).unwrap();
    let mut s2 = Session::open(&root).unwrap();
    let rw = MaxsonScanRewriter::open(&root).unwrap();
    s2.set_scan_rewriter(Some(Box::new(rw)));
    // No registry: all calls parse, results still correct.
    let result = s2.execute(SQL).unwrap();
    assert_eq!(result.rows.len(), 40);
    assert_eq!(result.metrics.parse_calls, 40);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn deleted_cache_table_directory_fails_loudly() {
    let (_, root) = cached_session("deleted-dir");
    std::fs::remove_dir_all(root.join("__maxson_cache").join("db__t")).unwrap();
    let mut s2 = Session::open(&root).unwrap();
    let rw = MaxsonScanRewriter::open(&root).unwrap();
    s2.set_scan_rewriter(Some(Box::new(rw)));
    // The registry says cached, but the table is gone: must be an error.
    assert!(s2.execute(SQL).is_err());
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn registry_round_trip_tolerates_empty_array() {
    let root = temp_root("empty-array");
    let catalog = Catalog::open(&root).unwrap();
    std::fs::create_dir_all(root.join("__maxson_cache")).unwrap();
    std::fs::write(root.join("__maxson_cache").join("registry.json"), "[]").unwrap();
    let reg = CacheRegistry::load(&catalog).unwrap();
    assert!(reg.is_empty());
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn raw_table_shrunk_below_cache_is_misalignment_error() {
    // Simulate the forbidden case: the raw table was rewritten with fewer
    // rows than the cache file. The combiner must refuse to stitch.
    let (_, root) = cached_session("shrunk-raw");
    // Replace the raw part file with a shorter one, keeping the metadata
    // timestamp unchanged (sneaky out-of-band modification).
    let raw_dir = root.join("db").join("t");
    let schema = Schema::new(vec![
        Field::new("id", ColumnType::Int64),
        Field::new("payload", ColumnType::Utf8),
    ])
    .unwrap();
    let short_rows: Vec<Vec<Cell>> = (0..5)
        .map(|i| vec![Cell::Int(i), Cell::from(format!(r#"{{"a": {i}}}"#))])
        .collect();
    maxson_storage::file::write_rows(
        raw_dir.join("part-00000.norc"),
        schema,
        &short_rows,
        WriteOptions::default(),
    )
    .unwrap();
    let mut s2 = Session::open(&root).unwrap();
    let rw = MaxsonScanRewriter::open(&root).unwrap();
    s2.set_scan_rewriter(Some(Box::new(rw)));
    // A cache-only read never touches the raw file, so use a query that
    // stitches raw and cached columns: the combiner must detect the
    // mismatch instead of stitching rows positionally out of step.
    let err = s2
        .execute("select id, get_json_object(payload, '$.a') as a from db.t")
        .unwrap_err()
        .to_string();
    assert!(err.contains("misalignment"), "got: {err}");
    std::fs::remove_dir_all(&root).ok();
}

// ---------------------------------------------------------------------
// Malformed payloads: data, not failures
// ---------------------------------------------------------------------

/// Build a table whose payload column holds exactly `docs`.
fn payload_table(name: &str, docs: &[String]) -> PathBuf {
    let root = temp_root(name);
    let mut session = Session::open(&root).unwrap();
    let schema = Schema::new(vec![
        Field::new("id", ColumnType::Int64),
        Field::new("payload", ColumnType::Utf8),
    ])
    .unwrap();
    let mut catalog = session.catalog_mut();
    let table = catalog.create_table("db", "t", schema, 0).unwrap();
    let rows: Vec<Vec<Cell>> = docs
        .iter()
        .enumerate()
        .map(|(i, d)| vec![Cell::Int(i as i64), Cell::from(d.clone())])
        .collect();
    table
        .append_file(
            &rows,
            WriteOptions {
                row_group_size: 8,
                ..Default::default()
            },
            1,
        )
        .unwrap();
    drop(catalog);
    root
}

const MALFORMED_SQL: &str = "select get_json_object(payload, '$.id') as id, \
                             get_json_object(payload, '$.name') as name from db.t \
                             where get_json_object(payload, '$.id') >= 0";

/// Every parser mode executes queries over known-malformed documents
/// without panicking and returns `Ok`: the Jackson semantics — invalid doc
/// evaluates to null — carry over to Mison and Tape, and Tape agrees with
/// Jackson row-for-row.
#[test]
fn malformed_payload_literals_execute_in_every_parser_mode() {
    let mut docs: Vec<String> = vec![
        "{truncated".into(),
        "".into(),
        "   ".into(),
        "{\"id\": 1, \"name\": \"x\"} trailing".into(),
        "{\"id\": 2, \"name\": \"unterminated".into(),
        "{\"id\": 3, \"name\": \"bad \\q escape\"}".into(),
        "{\"id\": 04}".into(),
        "[1, 2".into(),
        format!("{}0{}", "[".repeat(150), "]".repeat(150)),
        "{\"id\": 5, \"id\"".into(),
        "not json at all".into(),
        "\u{0}\u{1}\u{2}".into(),
    ];
    docs.extend(corpus::invalid_docs(0xFA11, 60));
    let root = payload_table("malformed-literals", &docs);

    let mut jackson_rows = None;
    for parser in [
        JsonParserKind::Jackson,
        JsonParserKind::Mison,
        JsonParserKind::Tape,
    ] {
        for shared in [false, true] {
            let mut session = Session::open(&root).unwrap();
            session.set_parser(parser);
            session.set_threads(Some(2));
            session.set_shared_parse(Some(shared));
            let result = session
                .execute(MALFORMED_SQL)
                .unwrap_or_else(|e| panic!("{parser:?} shared={shared} errored: {e}"));
            // Every document is invalid → the `$.id` predicate never
            // matches → zero rows, under Jackson semantics.
            match parser {
                JsonParserKind::Mison => {
                    // Mison skips whole-document validation, so it may
                    // extract from e.g. trailing-garbage docs; only the
                    // no-panic/Ok guarantee applies.
                }
                _ => match &jackson_rows {
                    None => jackson_rows = Some(result.rows.clone()),
                    Some(r) => assert_eq!(
                        &result.rows, r,
                        "{parser:?} shared={shared} diverged from Jackson on malformed docs"
                    ),
                },
            }
        }
    }
    assert_eq!(
        jackson_rows.expect("jackson ran"),
        Vec::<Vec<Cell>>::new(),
        "all documents are invalid, so no row passes the predicate"
    );
    std::fs::remove_dir_all(&root).ok();
}

/// Property test: byte-level mutations of valid documents — flips,
/// insertions, deletions, truncations — never panic any parser mode, and
/// Tape stays row-identical to Jackson whatever the mutation did.
#[test]
fn property_mutated_payloads_error_never_panic() {
    let cfg = Config::with_cases(12);
    check(
        "mutated_payloads_no_panic",
        &cfg,
        &Gen::tuple2(Gen::u64_any(), Gen::usize_in(6..=24)),
        |&(seed, rows)| {
            let mut rng = Rng::seed_from_u64(seed);
            let docs: Vec<String> = corpus::valid_docs(seed, rows)
                .iter()
                .map(|d| corpus::mutate_bytes(d, &mut rng))
                .collect();
            let root = payload_table(&format!("mut-{seed}"), &docs);
            let mut reference: Option<(Vec<Vec<Cell>>, String)> = None;
            for parser in [
                JsonParserKind::Jackson,
                JsonParserKind::Mison,
                JsonParserKind::Tape,
            ] {
                for shared in [false, true] {
                    let mut session = Session::open(&root).map_err(|e| format!("open: {e}"))?;
                    session.set_parser(parser);
                    session.set_threads(Some(2));
                    session.set_shared_parse(Some(shared));
                    let result = session
                        .execute(MALFORMED_SQL)
                        .map_err(|e| format!("{parser:?} shared={shared}: {e}"))?;
                    if parser != JsonParserKind::Mison {
                        let rendered = result.to_display_string();
                        match &reference {
                            None => reference = Some((result.rows.clone(), rendered)),
                            Some((rows, display)) => {
                                maxson_testkit::prop_assert_eq!(&result.rows, rows);
                                maxson_testkit::prop_assert_eq!(&rendered, display);
                            }
                        }
                    }
                }
            }
            std::fs::remove_dir_all(&root).ok();
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Server fault injection: hostile clients and panicking queries must be
// contained at the connection boundary — the server keeps serving and
// shared warehouse state stays usable.
// ---------------------------------------------------------------------

use maxson_engine::metrics::ExecMetrics;
use maxson_engine::scan::ScanProvider;
use maxson_engine::session::{ScanContext, ScanRewrite, TableScanRewriter};
use maxson_server::wire::{self, OpCode, Writer, MAGIC, STATUS_ERR};
use maxson_server::{Client, Server, ServerConfig};
use std::io::Write as _;
use std::net::TcpStream;

/// Serve a small warehouse; callers get the running server and its root.
fn serve_small(name: &str) -> (Server, PathBuf) {
    let root = temp_root(name);
    let mut session = Session::open(&root).unwrap();
    let schema = Schema::new(vec![
        Field::new("id", ColumnType::Int64),
        Field::new("payload", ColumnType::Utf8),
    ])
    .unwrap();
    let mut catalog = session.catalog_mut();
    let table = catalog.create_table("db", "t", schema, 0).unwrap();
    let rows: Vec<Vec<Cell>> = (0..24)
        .map(|i| vec![Cell::Int(i), Cell::from(format!(r#"{{"a": {i}}}"#))])
        .collect();
    table
        .append_file(&rows, WriteOptions::default(), 1)
        .unwrap();
    drop(catalog);
    let server = Server::serve(session, "127.0.0.1:0", ServerConfig::default()).unwrap();
    (server, root)
}

const SERVED_SQL: &str = "select id, get_json_object(payload, '$.a') as a from db.t where id < 5";

/// Expect one frame on the raw stream and return its status byte.
fn read_status(stream: &mut TcpStream) -> maxson_server::Result<u8> {
    let payload = wire::read_frame(stream)?;
    Ok(payload.first().copied().unwrap_or(0xFF))
}

#[test]
fn server_survives_client_disconnect_mid_query() {
    let (mut server, root) = serve_small("disc");
    let addr = server.addr();
    // Fire a query and hang up without reading the response.
    for _ in 0..4 {
        let mut raw = TcpStream::connect(addr).unwrap();
        let mut w = Writer::new();
        w.u8(MAGIC).u8(OpCode::Query as u8).str(SERVED_SQL);
        wire::write_frame(&mut raw, &w.into_bytes()).unwrap();
        drop(raw); // gone before the result comes back
    }
    // Hang up mid-frame too: length prefix promising bytes that never come.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(&100u32.to_be_bytes()).unwrap();
        raw.write_all(&[MAGIC]).unwrap();
        drop(raw);
    }
    // The server is still fully functional for well-behaved clients.
    let mut client = Client::connect(addr).unwrap();
    let result = client.query(SERVED_SQL).unwrap();
    assert_eq!(result.rows.len(), 5);
    // The abandoned queries still run to completion server-side (only the
    // response write fails), so give their leases a moment to drain before
    // calling any survivor a leak.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let stats = loop {
        let stats = client.stats().unwrap();
        if stats.active_queries == 0 || std::time::Instant::now() >= deadline {
            break stats;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    };
    assert_eq!(stats.active_queries, 0, "leaked query leases: {stats:?}");
    server.stop();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn malformed_frames_are_answered_and_contained() {
    let (mut server, root) = serve_small("malformed");
    let addr = server.addr();
    let hostile_frames: [&[u8]; 4] = [
        &[0x00, 0x01],                          // bad magic
        &[MAGIC, 0xEE],                         // unknown opcode
        &[MAGIC],                               // missing opcode
        &[MAGIC, 0x01, 0x00, 0x00, 0x00, 0x63], // QUERY whose string is truncated
    ];
    for frame in hostile_frames {
        let mut raw = TcpStream::connect(addr).unwrap();
        wire::write_frame(&mut raw, frame).unwrap();
        let status = read_status(&mut raw).expect("server must answer before closing");
        assert_eq!(status, STATUS_ERR, "hostile frame {frame:?} not rejected");
        // The connection is closed after a protocol error: the next read
        // sees EOF, not a hang.
        assert!(wire::read_frame(&mut raw).is_err());
        // And the server still serves others.
        let mut client = Client::connect(addr).unwrap();
        client.ping().unwrap();
        assert_eq!(client.query(SERVED_SQL).unwrap().rows.len(), 5);
    }
    server.stop();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn oversized_frame_is_rejected_without_allocation() {
    let (mut server, root) = serve_small("oversized");
    let addr = server.addr();
    let mut raw = TcpStream::connect(addr).unwrap();
    // A length prefix claiming 1 GiB. The server must refuse before
    // allocating or reading the body.
    raw.write_all(&(1u32 << 30).to_be_bytes()).unwrap();
    raw.flush().unwrap();
    let status = read_status(&mut raw).expect("server must answer the liar");
    assert_eq!(status, STATUS_ERR);
    assert!(wire::read_frame(&mut raw).is_err(), "connection must close");
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.query(SERVED_SQL).unwrap().rows.len(), 5);
    server.stop();
    std::fs::remove_dir_all(&root).ok();
}

/// Provider whose splits always panic — stands in for poisoned data
/// reached through the shared rewriter.
#[derive(Debug)]
struct AlwaysPanicProvider {
    schema: Schema,
}

impl ScanProvider for AlwaysPanicProvider {
    fn schema(&self) -> &Schema {
        &self.schema
    }
    fn scan(&self, _metrics: &mut ExecMetrics) -> maxson_engine::Result<Vec<Vec<Cell>>> {
        panic!("poisoned provider");
    }
    fn split_count(&self) -> usize {
        4
    }
    fn scan_split(
        &self,
        _split: usize,
        _metrics: &mut ExecMetrics,
    ) -> maxson_engine::Result<Vec<Vec<Cell>>> {
        panic!("poisoned provider");
    }
    fn label(&self) -> String {
        "AlwaysPanicProvider".into()
    }
}

/// Rewrites scans of `db.boom` only; everything else runs normally.
struct SelectivePanicRewriter;

impl TableScanRewriter for SelectivePanicRewriter {
    fn name(&self) -> &str {
        "SelectivePanic"
    }
    fn rewrite_scan(&self, ctx: &ScanContext<'_>) -> maxson_engine::Result<Option<ScanRewrite>> {
        if ctx.table != "boom" {
            return Ok(None);
        }
        let schema = Schema::new(vec![Field::new("id", ColumnType::Int64)]).unwrap();
        Ok(Some(ScanRewrite {
            provider: Box::new(AlwaysPanicProvider { schema }),
            resolved_paths: Vec::new(),
        }))
    }
}

#[test]
fn panicking_split_task_is_contained_by_the_server() {
    let root = temp_root("panic-split");
    let mut template = Session::open(&root).unwrap();
    {
        let schema = Schema::new(vec![
            Field::new("id", ColumnType::Int64),
            Field::new("payload", ColumnType::Utf8),
        ])
        .unwrap();
        let mut catalog = template.catalog_mut();
        let good = catalog.create_table("db", "t", schema.clone(), 0).unwrap();
        let rows: Vec<Vec<Cell>> = (0..24)
            .map(|i| vec![Cell::Int(i), Cell::from(format!(r#"{{"a": {i}}}"#))])
            .collect();
        good.append_file(&rows, WriteOptions::default(), 1).unwrap();
        let boom = catalog.create_table("db", "boom", schema, 0).unwrap();
        boom.append_file(&rows[..4], WriteOptions::default(), 1)
            .unwrap();
        drop(catalog);
    }
    template.set_scan_rewriter(Some(Box::new(SelectivePanicRewriter)));
    let mut server = Server::serve(
        template,
        "127.0.0.1:0",
        ServerConfig {
            threads: Some(4),
            permits: Some(4),
            result_cache_mb: None,
        },
    )
    .unwrap();
    let addr = server.addr();

    let mut client = Client::connect(addr).unwrap();
    for round in 0..3 {
        let err = client
            .query("select id from db.boom")
            .expect_err("panicking scan must be an error response");
        let msg = err.to_string();
        assert!(
            msg.contains("panic") || msg.contains("poisoned provider"),
            "round {round}: error should surface the panic: {msg}"
        );
        // Same connection keeps working after its query panicked.
        assert_eq!(client.query(SERVED_SQL).unwrap().rows.len(), 5);
    }
    // Other connections are untouched, and no scheduler lease leaked.
    let mut other = Client::connect(addr).unwrap();
    assert_eq!(other.query(SERVED_SQL).unwrap().rows.len(), 5);
    let stats = other.stats().unwrap();
    assert_eq!(stats.active_queries, 0, "leaked query leases: {stats:?}");
    assert_eq!(stats.queries_err, 3, "panics must be counted: {stats:?}");
    server.stop();
    std::fs::remove_dir_all(&root).ok();
}

// ---------------------------------------------------------------------
// Reuse-cache fault injection: a panic on the fill path must be contained
// (the query's rows are already computed and are returned unchanged), and
// the cache must take itself out of service *loudly* — a poisoned counter,
// a `reuse="poisoned"` query-log line, `disabled` thereafter — never
// silently serve from a structure a panic may have left inconsistent.
// ---------------------------------------------------------------------

use maxson_obs::Registry;
use std::sync::Arc;

const REUSE_SQL: &str = "select id, get_json_object(payload, '$.a') as a from db.t where id < 20";

fn reuse_table(name: &str) -> PathBuf {
    let docs: Vec<String> = (0..30).map(|i| format!(r#"{{"a": {i}}}"#)).collect();
    payload_table(name, &docs)
}

#[test]
fn poisoned_reuse_fill_is_contained_and_disables_the_cache_loudly() {
    let root = reuse_table("reuse-poison");
    let reference = Session::open(&root).unwrap().execute(REUSE_SQL).unwrap();

    let mut session = Session::open(&root).unwrap();
    session.set_result_cache(Some(8));
    let registry = Arc::new(Registry::new());
    session.set_metrics_registry(Arc::clone(&registry));
    let log_path = temp_root("reuse-poison-log").with_extension("jsonl");
    session.set_query_log(Some(log_path.clone())).unwrap();

    let cache = session.reuse_cache().expect("cache enabled");
    cache.inject_fill_panic();

    // The fill panics inside the cache; the query must still answer with
    // the rows it already computed, byte for byte.
    let poisoned_run = session.execute(REUSE_SQL).unwrap();
    assert_eq!(poisoned_run.rows, reference.rows);
    assert_eq!(
        poisoned_run.to_display_string(),
        reference.to_display_string()
    );

    // Loud, not silent: the poison is counted, logged, and latched.
    assert_eq!(
        registry.counter_value("maxson_reuse_poisoned_total", &[]),
        Some(1),
        "contained fill panic must charge the poisoned counter"
    );
    assert!(cache.is_disabled(), "cache must take itself out of service");
    assert!(session.reuse_stats().unwrap().disabled);

    // Out of service means *neither* serving nor filling — and still
    // correct. The disabled state is visible per query in the log.
    let after = session.execute(REUSE_SQL).unwrap();
    assert_eq!(after.rows, reference.rows);
    assert_eq!(after.metrics.reuse_hits, 0);
    assert_eq!(after.metrics.reuse_fills, 0);

    let log = std::fs::read_to_string(&log_path).unwrap();
    let statuses: Vec<String> = log
        .lines()
        .map(|l| {
            maxson_json::parse(l)
                .expect("log line parses")
                .get("reuse")
                .and_then(|v| v.as_str().map(str::to_owned))
                .expect("reuse field present")
        })
        .collect();
    assert_eq!(
        statuses,
        vec!["poisoned".to_string(), "disabled".to_string()],
        "query log must narrate the failure"
    );
    std::fs::remove_file(&log_path).ok();
    std::fs::remove_dir_all(&root).ok();
}

/// A zero-byte budget rejects every entry (the oversize guard): results
/// stay byte-identical and nothing ever becomes resident.
#[test]
fn oversized_reuse_entries_are_rejected_with_identical_results() {
    let root = reuse_table("reuse-oversize");
    let reference = Session::open(&root).unwrap().execute(REUSE_SQL).unwrap();

    let mut session = Session::open(&root).unwrap();
    session.set_result_cache(Some(0));
    for round in 0..3 {
        let run = session.execute(REUSE_SQL).unwrap();
        assert_eq!(
            run.to_display_string(),
            reference.to_display_string(),
            "round {round} diverged under an always-rejecting cache"
        );
        assert_eq!(
            run.metrics.reuse_hits, 0,
            "nothing admitted, nothing served"
        );
    }
    let stats = session.reuse_stats().unwrap();
    assert_eq!(stats.fills, 0, "zero budget must admit nothing");
    assert_eq!(stats.bytes_resident, 0);
    assert_eq!(stats.misses, 3, "every probe is an honest miss");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn shutdown_opcode_drains_cleanly() {
    let (mut server, root) = serve_small("shutdown-op");
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.query(SERVED_SQL).unwrap().rows.len(), 5);
    client.shutdown().unwrap();
    assert!(server.is_shutdown());
    // stop() joins the accept and connection threads; must not hang.
    server.stop();
    // A post-shutdown connection attempt must not be served a query.
    if let Ok(mut late) = Client::connect(addr) {
        assert!(late.ping().is_err() || late.query(SERVED_SQL).is_err());
    }
    std::fs::remove_dir_all(&root).ok();
}
