//! Failure-injection tests: corruption, truncation, and concurrent-update
//! hazards must surface as errors (or safe fallbacks), never as wrong
//! results.

use maxson::mpjp::PredictorKind;
use maxson::rewriter::MaxsonScanRewriter;
use maxson::{CacheRegistry, MaxsonPipeline, PipelineConfig};
use maxson_engine::session::Session;
use maxson_storage::file::WriteOptions;
use maxson_storage::{Catalog, Cell, ColumnType, Field, Schema};
use maxson_trace::model::RecurrenceClass;
use maxson_trace::{JsonPathLocation, QueryRecord};
use std::path::PathBuf;

fn temp_root(name: &str) -> PathBuf {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .subsec_nanos();
    std::env::temp_dir().join(format!("maxson-fail-{}-{nanos}-{name}", std::process::id()))
}

fn cached_session(name: &str) -> (Session, PathBuf) {
    let root = temp_root(name);
    let mut session = Session::open(&root).unwrap();
    let schema = Schema::new(vec![
        Field::new("id", ColumnType::Int64),
        Field::new("payload", ColumnType::Utf8),
    ])
    .unwrap();
    let t = session
        .catalog_mut()
        .create_table("db", "t", schema, 0)
        .unwrap();
    let rows: Vec<Vec<Cell>> = (0..40)
        .map(|i| vec![Cell::Int(i), Cell::from(format!(r#"{{"a": {i}}}"#))])
        .collect();
    t.append_file(
        &rows,
        WriteOptions {
            row_group_size: 10,
            ..Default::default()
        },
        1,
    )
    .unwrap();
    let history: Vec<QueryRecord> = (0..10u32)
        .flat_map(|day| {
            (0..2u32).map(move |user| QueryRecord {
                query_id: u64::from(day * 2 + user),
                user_id: user,
                day,
                hour: 9,
                recurrence: RecurrenceClass::Daily,
                paths: vec![JsonPathLocation::new("db", "t", "payload", "$.a")],
            })
        })
        .collect();
    let mut pipeline = MaxsonPipeline::new(
        &root,
        PipelineConfig {
            predictor: PredictorKind::RepeatYesterday,
            ..Default::default()
        },
    );
    pipeline.observe(history.iter());
    pipeline
        .run_midnight_cycle(&mut session, &history, 8, 100)
        .unwrap();
    (session, root)
}

const SQL: &str = "select get_json_object(payload, '$.a') as a from db.t";

#[test]
fn corrupt_cache_file_fails_loudly_not_wrong() {
    let (session, root) = cached_session("corrupt-cache");
    // Sanity: cache serves.
    let ok = session.execute(SQL).unwrap();
    assert_eq!(ok.metrics.parse_calls, 0);

    // Flip bytes in the middle of the cache part file.
    let cache_file = root
        .join("__maxson_cache")
        .join("db__t")
        .join("part-00000.norc");
    let mut bytes = std::fs::read(&cache_file).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    bytes[mid + 1] ^= 0xff;
    std::fs::write(&cache_file, &bytes).unwrap();

    // A fresh session + rewriter must surface the corruption as an error —
    // never silently return stale/garbage values.
    let mut s2 = Session::open(&root).unwrap();
    let rw = MaxsonScanRewriter::open(&root).unwrap();
    s2.set_scan_rewriter(Some(Box::new(rw)));
    let result = s2.execute(SQL);
    assert!(result.is_err(), "corrupt cache file must error");
    let msg = result.unwrap_err().to_string();
    assert!(
        msg.contains("corrupt") || msg.contains("checksum"),
        "unexpected error: {msg}"
    );
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn truncated_cache_file_detected() {
    let (_, root) = cached_session("truncated-cache");
    let cache_file = root
        .join("__maxson_cache")
        .join("db__t")
        .join("part-00000.norc");
    let bytes = std::fs::read(&cache_file).unwrap();
    std::fs::write(&cache_file, &bytes[..bytes.len() / 2]).unwrap();
    let mut s2 = Session::open(&root).unwrap();
    let rw = MaxsonScanRewriter::open(&root).unwrap();
    s2.set_scan_rewriter(Some(Box::new(rw)));
    assert!(s2.execute(SQL).is_err());
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn corrupt_registry_is_an_error_not_a_silent_miss() {
    let (_, root) = cached_session("bad-registry");
    std::fs::write(
        root.join("__maxson_cache").join("registry.json"),
        "{not valid json",
    )
    .unwrap();
    assert!(MaxsonScanRewriter::open(&root).is_err());
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn missing_registry_means_no_rewrites() {
    let (_, root) = cached_session("no-registry");
    std::fs::remove_file(root.join("__maxson_cache").join("registry.json")).unwrap();
    let mut s2 = Session::open(&root).unwrap();
    let rw = MaxsonScanRewriter::open(&root).unwrap();
    s2.set_scan_rewriter(Some(Box::new(rw)));
    // No registry: all calls parse, results still correct.
    let result = s2.execute(SQL).unwrap();
    assert_eq!(result.rows.len(), 40);
    assert_eq!(result.metrics.parse_calls, 40);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn deleted_cache_table_directory_fails_loudly() {
    let (_, root) = cached_session("deleted-dir");
    std::fs::remove_dir_all(root.join("__maxson_cache").join("db__t")).unwrap();
    let mut s2 = Session::open(&root).unwrap();
    let rw = MaxsonScanRewriter::open(&root).unwrap();
    s2.set_scan_rewriter(Some(Box::new(rw)));
    // The registry says cached, but the table is gone: must be an error.
    assert!(s2.execute(SQL).is_err());
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn registry_round_trip_tolerates_empty_array() {
    let root = temp_root("empty-array");
    let catalog = Catalog::open(&root).unwrap();
    std::fs::create_dir_all(root.join("__maxson_cache")).unwrap();
    std::fs::write(root.join("__maxson_cache").join("registry.json"), "[]").unwrap();
    let reg = CacheRegistry::load(&catalog).unwrap();
    assert!(reg.is_empty());
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn raw_table_shrunk_below_cache_is_misalignment_error() {
    // Simulate the forbidden case: the raw table was rewritten with fewer
    // rows than the cache file. The combiner must refuse to stitch.
    let (_, root) = cached_session("shrunk-raw");
    // Replace the raw part file with a shorter one, keeping the metadata
    // timestamp unchanged (sneaky out-of-band modification).
    let raw_dir = root.join("db").join("t");
    let schema = Schema::new(vec![
        Field::new("id", ColumnType::Int64),
        Field::new("payload", ColumnType::Utf8),
    ])
    .unwrap();
    let short_rows: Vec<Vec<Cell>> = (0..5)
        .map(|i| vec![Cell::Int(i), Cell::from(format!(r#"{{"a": {i}}}"#))])
        .collect();
    maxson_storage::file::write_rows(
        raw_dir.join("part-00000.norc"),
        schema,
        &short_rows,
        WriteOptions::default(),
    )
    .unwrap();
    let mut s2 = Session::open(&root).unwrap();
    let rw = MaxsonScanRewriter::open(&root).unwrap();
    s2.set_scan_rewriter(Some(Box::new(rw)));
    // A cache-only read never touches the raw file, so use a query that
    // stitches raw and cached columns: the combiner must detect the
    // mismatch instead of stitching rows positionally out of step.
    let err = s2
        .execute("select id, get_json_object(payload, '$.a') as a from db.t")
        .unwrap_err()
        .to_string();
    assert!(err.contains("misalignment"), "got: {err}");
    std::fs::remove_dir_all(&root).ok();
}
