//! Three-parser differential tests locking the on-demand tape parser
//! (`JsonParserKind::Tape`) to the Jackson DOM reference, with the Mison
//! structural index as the third wheel.
//!
//! Layers:
//!
//! 1. **Golden + NoBench queries** — every query runs under Jackson, Mison,
//!    and Tape, at 1 and 4 threads, with shared parse off and on. Rows,
//!    rendered output, and every work counter must match the serial naive
//!    Jackson reference exactly; `nodes_skipped` must be zero for the
//!    non-tape parsers.
//! 2. **Adversarial corpus** — the seed-replayable corpus from
//!    `maxson_testkit::corpus`. Valid-tier documents get full three-way
//!    identity (API level and engine level). Invalid-tier documents pin
//!    Tape to Jackson only: Mison's index deliberately skips whole-document
//!    validation (it accepts trailing garbage and over-deep nesting), so
//!    rejection identity is a two-parser property.
//! 3. **Semantics regressions** — duplicate keys are first-wins in all
//!    three parsers; selective queries under Tape skip nodes without
//!    parsing a single extra document; `MAXSON_PARSER` resolution in
//!    `Session::open` honors the environment (ci.sh runs this whole binary
//!    under `MAXSON_PARSER=tape`).
//! 4. **Property test** — random corpus tables × random queries, three
//!    parsers × 1/4 threads × shared parse off/on. Failures replay via
//!    `MAXSON_TESTKIT_SEED`.
//!
//! Toggles are pinned with `Session::set_parser` / `set_threads` /
//! `set_shared_parse`, not env vars, so parallel test binaries cannot race
//! on process-global state; only the env-resolution test reads the
//! environment, and it asserts consistency rather than a fixed kind.

use maxson::rewriter::MaxsonScanRewriter;
use maxson_datagen::NobenchGenerator;
use maxson_engine::metrics::ExecMetrics;
use maxson_engine::session::{JsonParserKind, Session};
use maxson_json::mison::MisonProjector;
use maxson_json::tape::{self, TapeStats};
use maxson_json::JsonPath;
use maxson_storage::file::WriteOptions;
use maxson_storage::{Cell, ColumnType, Field, Schema};
use maxson_testkit::corpus;
use maxson_testkit::prop::{check, Config, Gen};
use std::path::PathBuf;

const ALL_PARSERS: [JsonParserKind; 3] = [
    JsonParserKind::Jackson,
    JsonParserKind::Mison,
    JsonParserKind::Tape,
];

fn bench_data_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("bench-data")
}

fn temp_root(name: &str) -> PathBuf {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .subsec_nanos();
    std::env::temp_dir().join(format!("maxson-tape-{}-{nanos}-{name}", std::process::id()))
}

/// The golden rewriter queries (see tests/rewriter_golden.rs).
const GOLDEN_QUERIES: [&str; 4] = [
    "select get_json_object(payload, '$.f0') as f0, \
     get_json_object(payload, '$.f1') as f1 from mydb.q1",
    "select get_json_object(payload, '$.f0') as f0, \
     get_json_object(payload, '$.f10') as f10 from mydb.q2",
    "select get_json_object(payload, '$.f0') as f0 \
     from mydb.q1 where get_json_object(payload, '$.f0') > 900",
    "select get_json_object(payload, '$.f12') as f12 from mydb.q2",
];

/// Counters that must be identical across parsers and execution modes —
/// everything that counts discrete work except `docs_parsed` (shared parse
/// shrinks it; it is asserted separately) and `nodes_skipped` (tape-only
/// by design; asserted separately too).
fn parser_invariant_counters(m: &ExecMetrics) -> [u64; 7] {
    [
        m.rows_scanned,
        m.bytes_read,
        m.parse_calls,
        m.cache_hits,
        m.row_groups_skipped,
        m.row_groups_read,
        m.prefilter_dropped,
    ]
}

/// Run `sql` under the serial naive Jackson reference, then under all
/// three parsers × {1, 4} threads × shared parse {off, on}: rows, rendered
/// output, and work counters must match the reference exactly.
fn assert_tape_differential(mut make_session: impl FnMut() -> Session, sql: &str, label: &str) {
    let mut reference_session = make_session();
    reference_session.set_parser(JsonParserKind::Jackson);
    reference_session.set_threads(Some(1));
    reference_session.set_shared_parse(Some(false));
    let reference = reference_session
        .execute(sql)
        .unwrap_or_else(|e| panic!("[{label}] reference run failed for {sql}: {e}"));
    for parser in ALL_PARSERS {
        for threads in [1, 4] {
            for shared in [false, true] {
                let mut session = make_session();
                session.set_parser(parser);
                session.set_threads(Some(threads));
                session.set_shared_parse(Some(shared));
                let result = session.execute(sql).unwrap_or_else(|e| {
                    panic!("[{label}] {parser:?}/{threads}t/shared={shared} failed for {sql}: {e}")
                });
                assert_eq!(
                    result.rows, reference.rows,
                    "[{label}] rows diverged for {sql} ({parser:?}, {threads} threads, shared={shared})"
                );
                assert_eq!(
                    result.to_display_string(),
                    reference.to_display_string(),
                    "[{label}] rendered output diverged for {sql} ({parser:?}, {threads} threads, shared={shared})"
                );
                assert_eq!(
                    parser_invariant_counters(&result.metrics),
                    parser_invariant_counters(&reference.metrics),
                    "[{label}] work counters diverged for {sql} ({parser:?}, {threads} threads, shared={shared}): \
                     got {:?} vs reference {:?}",
                    result.metrics,
                    reference.metrics
                );
                assert!(
                    result.metrics.docs_parsed <= result.metrics.parse_calls,
                    "[{label}] docs_parsed must never exceed parse_calls: {:?}",
                    result.metrics
                );
                if parser != JsonParserKind::Tape {
                    assert_eq!(
                        result.metrics.nodes_skipped, 0,
                        "[{label}] non-tape parser charged nodes_skipped for {sql} ({parser:?})"
                    );
                }
            }
        }
    }
}

#[test]
fn golden_queries_three_way_identical_plain() {
    for sql in GOLDEN_QUERIES {
        assert_tape_differential(|| Session::open(bench_data_root()).unwrap(), sql, "plain");
    }
}

#[test]
fn golden_queries_three_way_identical_rewritten() {
    let make = || {
        let root = bench_data_root();
        let mut session = Session::open(&root).unwrap();
        let rewriter = MaxsonScanRewriter::open(&root).unwrap();
        session.set_scan_rewriter(Some(Box::new(rewriter)));
        session
    };
    for sql in GOLDEN_QUERIES {
        assert_tape_differential(make, sql, "rewritten");
    }
}

// ---------------------------------------------------------------------
// NoBench workload
// ---------------------------------------------------------------------

/// Build a NoBench table: `rows` seeded JSON documents over `files` splits.
fn nobench_table(name: &str, rows: u64, files: u64) -> PathBuf {
    let root = temp_root(name);
    let mut session = Session::open(&root).unwrap();
    let schema = Schema::new(vec![
        Field::new("id", ColumnType::Int64),
        Field::new("payload", ColumnType::Utf8),
    ])
    .unwrap();
    let mut catalog = session.catalog_mut();
    let table = catalog.create_table("nb", "docs", schema, 0).unwrap();
    let mut generator = NobenchGenerator::new(42);
    let per_file = rows / files;
    for f in 0..files {
        let rows: Vec<Vec<Cell>> = (f * per_file..(f + 1) * per_file)
            .map(|i| vec![Cell::Int(i as i64), Cell::from(generator.record_text(i))])
            .collect();
        table
            .append_file(
                &rows,
                WriteOptions {
                    row_group_size: 16,
                    ..Default::default()
                },
                1,
            )
            .unwrap();
    }
    drop(catalog);
    root
}

#[test]
fn nobench_workload_three_way_identical() {
    let root = nobench_table("nobench3", 240, 4);
    let queries = [
        "select get_json_object(payload, '$.str1') as s1, \
         get_json_object(payload, '$.num') as num, \
         get_json_object(payload, '$.nested_obj.str') as ns from nb.docs \
         where get_json_object(payload, '$.bool') = 'true'",
        "select get_json_object(payload, '$.num') as num from nb.docs \
         where get_json_object(payload, '$.num') > 100",
        "select get_json_object(payload, '$.str2') as grp, count(*), \
         sum(get_json_object(payload, '$.num')), \
         avg(get_json_object(payload, '$.num')) from nb.docs \
         group by get_json_object(payload, '$.str2')",
        "select get_json_object(payload, '$.str1') as s1 from nb.docs \
         where id < 60",
        "select id from nb.docs order by get_json_object(payload, '$.num') limit 9",
    ];
    for sql in queries {
        assert_tape_differential(|| Session::open(&root).unwrap(), sql, "nobench");
    }
    std::fs::remove_dir_all(&root).ok();
}

// ---------------------------------------------------------------------
// Adversarial corpus: API level
// ---------------------------------------------------------------------

fn corpus_paths() -> Vec<JsonPath> {
    corpus::query_paths()
        .iter()
        .map(|p| JsonPath::parse(p).unwrap())
        .collect()
}

/// Valid-tier corpus: all three parsers agree per path, per document, both
/// through the one-path and the shared many-path entry points.
#[test]
fn api_three_way_identical_on_valid_corpus() {
    let paths = corpus_paths();
    for doc in corpus::valid_docs(0xC0FFEE, 300) {
        let jackson: Vec<Option<String>> = paths
            .iter()
            .map(|p| maxson_json::get_json_object(&doc, p))
            .collect();
        let mison: Vec<Option<String>> = paths
            .iter()
            .map(|p| MisonProjector::project_path(&doc, p))
            .collect();
        let mut stats = TapeStats::default();
        let tape_single: Vec<Option<String>> = paths
            .iter()
            .map(|p| tape::project_path(&doc, p, &mut stats).map(|s| s.to_string()))
            .collect();
        let tape_shared: Vec<Option<String>> = tape::project_paths(&doc, &paths, &mut stats)
            .into_iter()
            .map(|v| v.map(|s| s.to_string()))
            .collect();
        assert_eq!(mison, jackson, "Mison diverged from Jackson on {doc}");
        assert_eq!(tape_single, jackson, "Tape diverged from Jackson on {doc}");
        assert_eq!(tape_shared, jackson, "shared Tape diverged on {doc}");
        // A corpus doc always has `$.id` and never `$.missing`.
        assert!(jackson[0].is_some(), "$.id missing from {doc}");
        assert!(jackson.last().unwrap().is_none(), "$.missing hit in {doc}");
    }
}

/// Invalid-tier corpus: Tape must reject exactly what Jackson rejects
/// (all-`None` projections, no panic). Mison is deliberately excluded —
/// its index skips whole-document validation by design.
#[test]
fn api_tape_matches_jackson_on_invalid_corpus() {
    let paths = corpus_paths();
    for doc in corpus::invalid_docs(0xBAD5EED, 300) {
        for p in &paths {
            let jackson = maxson_json::get_json_object(&doc, p);
            assert_eq!(jackson, None, "invalid doc parsed by Jackson: {doc:?}");
            let mut stats = TapeStats::default();
            let tape = tape::project_path(&doc, p, &mut stats).map(|s| s.to_string());
            assert_eq!(
                tape, jackson,
                "Tape accepted what Jackson rejected: {doc:?}"
            );
        }
        assert!(
            maxson_json::tape::TapeDoc::build(&doc).is_err(),
            "tape build accepted invalid doc: {doc:?}"
        );
    }
}

/// Byte-mutated valid documents: whatever Jackson decides (accept or
/// reject), Tape decides identically — and neither panics.
#[test]
fn api_tape_matches_jackson_on_mutated_corpus() {
    let paths = corpus_paths();
    let mut rng = maxson_testkit::Rng::seed_from_u64(0xF422);
    for doc in corpus::valid_docs(0xF422, 150) {
        let mutated = corpus::mutate_bytes(&doc, &mut rng);
        for p in &paths {
            let jackson = maxson_json::get_json_object(&mutated, p);
            let mut stats = TapeStats::default();
            let tape = tape::project_path(&mutated, p, &mut stats).map(|s| s.to_string());
            assert_eq!(
                tape, jackson,
                "Tape diverged from Jackson on mutated doc {mutated:?} path {p:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Adversarial corpus: engine level
// ---------------------------------------------------------------------

/// Build a table whose payload column is the valid-tier corpus.
fn corpus_table(name: &str, seed: u64, rows: usize, splits: usize) -> PathBuf {
    let root = temp_root(name);
    let mut session = Session::open(&root).unwrap();
    let schema = Schema::new(vec![
        Field::new("id", ColumnType::Int64),
        Field::new("payload", ColumnType::Utf8),
    ])
    .unwrap();
    let mut catalog = session.catalog_mut();
    let table = catalog.create_table("adv", "docs", schema, 0).unwrap();
    let docs = corpus::valid_docs(seed, rows);
    let per_file = rows.div_ceil(splits.max(1));
    for chunk_start in (0..rows).step_by(per_file.max(1)) {
        let rows: Vec<Vec<Cell>> = (chunk_start..(chunk_start + per_file).min(rows))
            .map(|i| vec![Cell::Int(i as i64), Cell::from(docs[i].clone())])
            .collect();
        table
            .append_file(
                &rows,
                WriteOptions {
                    row_group_size: 16,
                    ..Default::default()
                },
                1,
            )
            .unwrap();
    }
    drop(catalog);
    root
}

#[test]
fn corpus_workload_three_way_identical() {
    let root = corpus_table("corpus3", 0xADBEEF, 180, 3);
    let queries = [
        // Multi-path projection incl. an array index and a depth-2 field.
        "select get_json_object(payload, '$.name') as name, \
         get_json_object(payload, '$.num') as num, \
         get_json_object(payload, '$.arr[0]') as a0, \
         get_json_object(payload, '$.deep.x') as dx from adv.docs",
        // Selective filter on the guaranteed field.
        "select get_json_object(payload, '$.id') as id, \
         get_json_object(payload, '$.dup') as dup from adv.docs \
         where get_json_object(payload, '$.id') < 40",
        // Guaranteed-miss projection plus aggregation.
        "select count(*), count(get_json_object(payload, '$.missing')), \
         count(get_json_object(payload, '$.flag')) from adv.docs",
        // Container rendering: `$.deep` re-serializes a nested object.
        "select get_json_object(payload, '$.deep') as deep from adv.docs \
         where id < 25",
    ];
    for sql in queries {
        assert_tape_differential(|| Session::open(&root).unwrap(), sql, "corpus");
    }
    std::fs::remove_dir_all(&root).ok();
}

// ---------------------------------------------------------------------
// Semantics regressions
// ---------------------------------------------------------------------

/// Duplicate keys are first-wins in all three parsers, at the API level
/// and through the engine.
#[test]
fn duplicate_keys_are_first_wins_in_all_parsers() {
    let doc = r#"{"dup": 1, "other": true, "dup": 2, "dup": 3, "o": {"k": "a", "k": "b"}}"#;
    let dup = JsonPath::parse("$.dup").unwrap();
    let nested = JsonPath::parse("$.o.k").unwrap();
    assert_eq!(
        maxson_json::get_json_object(doc, &dup).as_deref(),
        Some("1")
    );
    assert_eq!(
        maxson_json::get_json_object(doc, &nested).as_deref(),
        Some("a")
    );
    assert_eq!(
        MisonProjector::project_path(doc, &dup).as_deref(),
        Some("1")
    );
    assert_eq!(
        MisonProjector::project_path(doc, &nested).as_deref(),
        Some("a")
    );
    let mut stats = TapeStats::default();
    assert_eq!(
        tape::project_path(doc, &dup, &mut stats).as_deref(),
        Some("1")
    );
    assert_eq!(
        tape::project_path(doc, &nested, &mut stats).as_deref(),
        Some("a")
    );

    // Engine level: one table, one row per duplicate-key shape.
    let root = temp_root("firstwins");
    let mut session = Session::open(&root).unwrap();
    let schema = Schema::new(vec![
        Field::new("id", ColumnType::Int64),
        Field::new("payload", ColumnType::Utf8),
    ])
    .unwrap();
    let mut catalog = session.catalog_mut();
    let table = catalog.create_table("db", "t", schema, 0).unwrap();
    let rows: Vec<Vec<Cell>> = (0..16)
        .map(|i| {
            vec![
                Cell::Int(i),
                Cell::from(format!(
                    r#"{{"dup": {i}, "pad": [1, 2], "dup": {}}}"#,
                    i + 100
                )),
            ]
        })
        .collect();
    table
        .append_file(&rows, WriteOptions::default(), 1)
        .unwrap();
    drop(catalog);
    let sql = "select get_json_object(payload, '$.dup') as dup from db.t";
    let mut rendered: Option<String> = None;
    for parser in ALL_PARSERS {
        session.set_parser(parser);
        let result = session.execute(sql).unwrap();
        for (i, row) in result.rows.iter().enumerate() {
            assert_eq!(
                row[0],
                Cell::from(i.to_string()),
                "{parser:?}: first occurrence must win"
            );
        }
        match &rendered {
            None => rendered = Some(result.to_display_string()),
            Some(r) => assert_eq!(&result.to_display_string(), r, "{parser:?}"),
        }
    }
    std::fs::remove_dir_all(&root).ok();
}

/// A selective query under Tape skips nodes without parsing any more (or
/// fewer) documents than Jackson does — laziness changes what a parse
/// materializes, never how many documents are parsed.
#[test]
fn selective_query_skips_nodes_without_extra_parses() {
    let root = corpus_table("skipcount", 0x5E1EC7, 120, 2);
    let sql = "select get_json_object(payload, '$.id') as id from adv.docs \
               where get_json_object(payload, '$.id') >= 0";
    let mut session = Session::open(&root).unwrap();
    session.set_threads(Some(1));
    session.set_shared_parse(Some(true));

    session.set_parser(JsonParserKind::Jackson);
    let jackson = session.execute(sql).unwrap();
    assert_eq!(jackson.metrics.nodes_skipped, 0);

    session.set_parser(JsonParserKind::Tape);
    let tape_run = session.execute(sql).unwrap();
    assert_eq!(tape_run.rows, jackson.rows);
    assert_eq!(
        tape_run.metrics.docs_parsed, jackson.metrics.docs_parsed,
        "tape must parse exactly as many documents as Jackson"
    );
    assert!(
        tape_run.metrics.nodes_skipped > 0,
        "selective query over multi-field docs must hop unqueried subtrees"
    );
    // The tape wall split is charged under the parse umbrella.
    assert!(
        tape_run.metrics.tape_build_wall > std::time::Duration::ZERO,
        "tape build wall must be charged"
    );
    std::fs::remove_dir_all(&root).ok();
}

/// `Session::open` resolves `MAXSON_PARSER` from the environment: the
/// opened session's parser matches what the env names (unset or unknown →
/// Jackson), and `set_parser` still overrides. ci.sh runs this test binary
/// under `MAXSON_PARSER=tape`, covering the non-default branch.
#[test]
fn session_open_resolves_parser_from_env() {
    let expected = std::env::var("MAXSON_PARSER")
        .ok()
        .and_then(|v| JsonParserKind::from_name(&v))
        .unwrap_or(JsonParserKind::Jackson);
    let root = temp_root("envparser");
    let mut session = Session::open(&root).unwrap();
    assert_eq!(session.parser_kind(), expected);
    session.set_parser(JsonParserKind::Mison);
    assert_eq!(session.parser_kind(), JsonParserKind::Mison);
    assert_eq!(
        JsonParserKind::from_name("TAPE"),
        Some(JsonParserKind::Tape)
    );
    assert_eq!(
        JsonParserKind::from_name(" jackson "),
        Some(JsonParserKind::Jackson)
    );
    assert_eq!(JsonParserKind::from_name("simdjson"), None);
    std::fs::remove_dir_all(&root).ok();
}

// ---------------------------------------------------------------------
// Property test: random corpus tables × random queries × all parsers
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Scenario {
    corpus_seed: u64,
    rows: usize,
    splits: usize,
    query: usize,
    threshold: i64,
}

const NUM_QUERIES: usize = 4;

fn scenario_gen() -> Gen<Scenario> {
    let base = Gen::tuple2(
        Gen::tuple2(Gen::u64_any(), Gen::usize_in(4..=48)),
        Gen::tuple2(
            Gen::usize_in(1..=3),
            Gen::tuple2(Gen::usize_in(0..=NUM_QUERIES - 1), Gen::i64_in(-5..=60)),
        ),
    );
    base.map(
        |((corpus_seed, rows), (splits, (query, threshold)))| Scenario {
            corpus_seed,
            rows,
            splits,
            query,
            threshold,
        },
    )
}

fn scenario_sql(s: &Scenario) -> String {
    let th = s.threshold;
    match s.query {
        0 => format!(
            "select get_json_object(payload, '$.id') as id, \
             get_json_object(payload, '$.name') as name from adv.docs \
             where get_json_object(payload, '$.id') >= {th}"
        ),
        1 => "select get_json_object(payload, '$.flag') as flag, count(*) \
              from adv.docs group by get_json_object(payload, '$.flag')"
            .into(),
        2 => format!(
            "select get_json_object(payload, '$.num') as num, \
             get_json_object(payload, '$.arr[2]') as a2, \
             get_json_object(payload, '$.deep.x') as dx from adv.docs \
             where id < {th}"
        ),
        _ => "select count(*), count(get_json_object(payload, '$.dup')), \
              count(get_json_object(payload, '$.missing')) from adv.docs"
            .into(),
    }
}

#[test]
fn property_corpus_queries_three_way_identical() {
    let cfg = Config::with_cases(16);
    check(
        "tape_three_way_differential",
        &cfg,
        &scenario_gen(),
        |scenario| {
            let root = temp_root(&format!("prop-{}", scenario.corpus_seed));
            {
                let built = corpus_table(
                    "unused",
                    scenario.corpus_seed,
                    scenario.rows,
                    scenario.splits,
                );
                // corpus_table creates its own temp root; move it under ours.
                std::fs::rename(&built, &root).map_err(|e| format!("rename: {e}"))?;
            }
            let sql = scenario_sql(scenario);
            let mut reference_session = Session::open(&root).map_err(|e| format!("open: {e}"))?;
            reference_session.set_parser(JsonParserKind::Jackson);
            reference_session.set_threads(Some(1));
            reference_session.set_shared_parse(Some(false));
            let reference = reference_session
                .execute(&sql)
                .map_err(|e| format!("reference: {e}"))?;
            for parser in ALL_PARSERS {
                for threads in [1, 4] {
                    for shared in [false, true] {
                        let mut session = Session::open(&root).map_err(|e| format!("open: {e}"))?;
                        session.set_parser(parser);
                        session.set_threads(Some(threads));
                        session.set_shared_parse(Some(shared));
                        let result = session
                            .execute(&sql)
                            .map_err(|e| format!("{parser:?}/{threads}t/shared={shared}: {e}"))?;
                        maxson_testkit::prop_assert_eq!(&result.rows, &reference.rows);
                        maxson_testkit::prop_assert_eq!(
                            result.to_display_string(),
                            reference.to_display_string()
                        );
                        maxson_testkit::prop_assert_eq!(
                            result.metrics.parse_calls,
                            reference.metrics.parse_calls
                        );
                        maxson_testkit::prop_assert!(
                            result.metrics.docs_parsed <= result.metrics.parse_calls
                        );
                        if parser != JsonParserKind::Tape {
                            maxson_testkit::prop_assert_eq!(result.metrics.nodes_skipped, 0u64);
                        }
                    }
                }
            }
            std::fs::remove_dir_all(&root).ok();
            Ok(())
        },
    );
}
