//! Differential proof that the cross-query reuse cache is invisible to
//! results: cache on vs cache off is byte-identical across parser modes
//! and thread counts, repeats are served without parsing a single
//! document, trivially-equivalent plan spellings share one entry, and a
//! `LIMIT` variant reuses the unlimited result (and vice versa) through
//! the fragment key space.

use maxson_engine::session::{JsonParserKind, Session};
use maxson_storage::file::WriteOptions;
use maxson_storage::{Cell, ColumnType, Field, Schema};
use std::path::PathBuf;

fn temp_root(name: &str) -> PathBuf {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .subsec_nanos();
    std::env::temp_dir().join(format!(
        "maxson-reuse-{}-{nanos}-{name}",
        std::process::id()
    ))
}

/// A table whose payload column exercises the JSON parsers: any cold run
/// must parse documents, so `docs_parsed == 0` proves a cache serve.
fn build_table(name: &str) -> PathBuf {
    let root = temp_root(name);
    let mut session = Session::open(&root).unwrap();
    let schema = Schema::new(vec![
        Field::new("id", ColumnType::Int64),
        Field::new("payload", ColumnType::Utf8),
    ])
    .unwrap();
    let mut catalog = session.catalog_mut();
    let table = catalog.create_table("db", "t", schema, 0).unwrap();
    let rows: Vec<Vec<Cell>> = (0..60)
        .map(|i| {
            vec![
                Cell::Int(i),
                Cell::from(format!(
                    r#"{{"a": {i}, "b": {}, "tag": "t{}"}}"#,
                    i % 9,
                    i % 4
                )),
            ]
        })
        .collect();
    table
        .append_file(
            &rows,
            WriteOptions {
                row_group_size: 16,
                ..Default::default()
            },
            1,
        )
        .unwrap();
    drop(catalog);
    root
}

const QUERIES: [&str; 5] = [
    "select id, get_json_object(payload, '$.a') as a from db.t \
     where get_json_object(payload, '$.a') >= 10",
    "select get_json_object(payload, '$.tag') as tag from db.t \
     where get_json_object(payload, '$.b') < 4 and id > 5",
    "select id from db.t order by id desc limit 7",
    "select distinct get_json_object(payload, '$.tag') as tag from db.t",
    "select count(*) as n, max(get_json_object(payload, '$.a')) as hi from db.t",
];

const PARSERS: [JsonParserKind; 3] = [
    JsonParserKind::Jackson,
    JsonParserKind::Mison,
    JsonParserKind::Tape,
];

fn open(root: &PathBuf, parser: JsonParserKind, threads: usize) -> Session {
    let mut session = Session::open(root).unwrap();
    session.set_parser(parser);
    session.set_threads(Some(threads));
    session
}

/// Cache on vs cache off, three parsers, one and four threads, cold fill
/// and warm hit: every rendered result is byte-identical.
#[test]
fn cache_on_off_is_byte_identical_across_parsers_and_threads() {
    let root = build_table("onoff");
    for parser in PARSERS {
        for threads in [1usize, 4] {
            let mut off = open(&root, parser, threads);
            off.set_result_cache(None); // explicit: immune to env defaults
            let mut on = open(&root, parser, threads);
            on.set_result_cache(Some(16));
            for sql in QUERIES {
                let reference = off.execute(sql).unwrap().to_display_string();
                let cold = on.execute(sql).unwrap();
                let warm = on.execute(sql).unwrap();
                assert_eq!(
                    cold.to_display_string(),
                    reference,
                    "[{parser:?}/{threads}t] cold cached run diverged for {sql}"
                );
                assert_eq!(
                    warm.to_display_string(),
                    reference,
                    "[{parser:?}/{threads}t] warm cached run diverged for {sql}"
                );
            }
        }
    }
    std::fs::remove_dir_all(&root).ok();
}

/// The second run of a repeated query is a full-result hit: zero
/// documents parsed, zero parser invocations, rows unchanged.
#[test]
fn repeated_query_hits_without_parsing_any_document() {
    let root = build_table("repeat");
    let mut session = open(&root, JsonParserKind::Tape, 2);
    session.set_result_cache(Some(16));
    let sql = QUERIES[0];
    let cold = session.execute(sql).unwrap();
    assert!(cold.metrics.docs_parsed > 0, "cold run must parse");
    assert_eq!(cold.metrics.reuse_fills, 1, "cold run must fill the cache");
    let warm = session.execute(sql).unwrap();
    assert_eq!(warm.metrics.reuse_hits, 1, "second run must hit");
    assert_eq!(warm.metrics.docs_parsed, 0, "a hit parses nothing");
    assert_eq!(warm.metrics.parse_calls, 0, "a hit never calls a parser");
    assert_eq!(warm.rows, cold.rows);
    let stats = session.reuse_stats().unwrap();
    assert_eq!(stats.hits, 1);
    assert!(stats.bytes_resident > 0);
    std::fs::remove_dir_all(&root).ok();
}

/// Trivially-equivalent spellings collide on one entry; changing a
/// literal must miss.
#[test]
fn commuted_predicates_share_an_entry_but_changed_literals_miss() {
    let root = build_table("normalize");
    let mut session = open(&root, JsonParserKind::Jackson, 1);
    session.set_result_cache(Some(16));
    let a = session
        .execute("select id from db.t where id > 5 and get_json_object(payload, '$.b') < 4")
        .unwrap();
    assert_eq!(a.metrics.reuse_fills, 1);
    // Commuted conjuncts, shuffled whitespace, different alias casing: the
    // canonical fingerprint is identical, so this is a hit, not a re-run.
    let b = session
        .execute("SELECT id FROM db.t  WHERE get_json_object(payload, '$.b') < 4   AND id > 5")
        .unwrap();
    assert_eq!(b.metrics.reuse_hits, 1, "commuted predicate must hit");
    assert_eq!(b.metrics.docs_parsed, 0);
    assert_eq!(b.rows, a.rows);
    // One changed literal is a different query: never served from cache.
    let c = session
        .execute("select id from db.t where id > 12 and get_json_object(payload, '$.b') < 4")
        .unwrap();
    assert_eq!(c.metrics.reuse_hits, 0, "changed literal must miss");
    assert_eq!(c.metrics.reuse_misses, 1);
    assert!(c.metrics.docs_parsed > 0);
    assert_ne!(c.rows, a.rows);
    std::fs::remove_dir_all(&root).ok();
}

/// An entry filled under one parser never serves another: parsers may
/// legitimately disagree on malformed documents, so the parser name is
/// folded into the reuse key.
#[test]
fn entries_are_parser_scoped() {
    let root = build_table("parser-scope");
    let mut session = open(&root, JsonParserKind::Jackson, 1);
    session.set_result_cache(Some(16));
    let sql = QUERIES[0];
    session.execute(sql).unwrap();
    session.set_parser(JsonParserKind::Tape);
    let other = session.execute(sql).unwrap();
    assert_eq!(other.metrics.reuse_hits, 0, "cross-parser reuse is unsound");
    assert_eq!(other.metrics.reuse_misses, 1);
    assert!(other.metrics.docs_parsed > 0);
    std::fs::remove_dir_all(&root).ok();
}

/// The fragment key space is the full key space of the peeled statement:
/// a `LIMIT` query reuses the unlimited result as its intermediate, and
/// an unlimited query is served outright by the fragment a `LIMIT` run
/// left behind.
#[test]
fn limit_variant_and_unlimited_query_reuse_each_other() {
    let unlimited = "select id, get_json_object(payload, '$.a') as a from db.t \
                     where get_json_object(payload, '$.b') < 8";
    let limited = "select id, get_json_object(payload, '$.a') as a from db.t \
                   where get_json_object(payload, '$.b') < 8 limit 5";

    // Direction 1: unlimited first, then LIMIT rides its cached rows.
    let root = build_table("frag-fwd");
    let mut session = open(&root, JsonParserKind::Tape, 2);
    session.set_result_cache(Some(16));
    let full = session.execute(unlimited).unwrap();
    let lim = session.execute(limited).unwrap();
    assert_eq!(
        lim.metrics.reuse_fragment_hits, 1,
        "LIMIT variant must rebuild over the cached unlimited rows"
    );
    assert_eq!(lim.metrics.docs_parsed, 0, "fragment hit parses nothing");
    assert_eq!(lim.rows, full.rows[..5].to_vec());
    std::fs::remove_dir_all(&root).ok();

    // Direction 2: LIMIT first fills its peeled fragment too, which *is*
    // the unlimited query's full key — so the unlimited run is a full hit.
    let root = build_table("frag-rev");
    let mut session = open(&root, JsonParserKind::Tape, 2);
    session.set_result_cache(Some(16));
    let lim = session.execute(limited).unwrap();
    assert!(lim.metrics.docs_parsed > 0);
    let full = session.execute(unlimited).unwrap();
    assert_eq!(
        full.metrics.reuse_hits, 1,
        "unlimited query must be served by the fragment the LIMIT run filled"
    );
    assert_eq!(full.metrics.docs_parsed, 0);
    assert_eq!(full.rows[..5].to_vec(), lim.rows);
    std::fs::remove_dir_all(&root).ok();
}

/// Appending data through the catalog write guard invalidates affected
/// entries: the next run re-executes and sees the new rows.
#[test]
fn catalog_writes_invalidate_instead_of_serving_stale_rows() {
    let root = build_table("invalidate");
    let mut session = open(&root, JsonParserKind::Jackson, 1);
    session.set_result_cache(Some(16));
    let sql = "select count(*) as n from db.t";
    let before = session.execute(sql).unwrap();
    assert_eq!(before.rows, vec![vec![Cell::Int(60)]]);
    {
        let mut catalog = session.catalog_mut();
        let table = catalog.table_mut("db", "t").unwrap();
        table
            .append_file(
                &[vec![
                    Cell::Int(60),
                    Cell::from(r#"{"a": 60, "b": 0, "tag": "t0"}"#),
                ]],
                WriteOptions::default(),
                2,
            )
            .unwrap();
    }
    let after = session.execute(sql).unwrap();
    assert_eq!(after.metrics.reuse_hits, 0, "stale entry must not serve");
    assert_eq!(after.rows, vec![vec![Cell::Int(61)]], "new row visible");
    std::fs::remove_dir_all(&root).ok();
}
