//! Golden tests for the Maxson plan rewriter over the checked-in
//! `bench-data/` warehouse (read-only: nothing here mutates the data).
//!
//! The warehouse ships with a valid cache for `mydb`: every `qN` table has
//! a `__maxson_cache.mydb__qN` companion whose `cached_at` postdates the
//! table's `modified_at`. `q2` caches `$.f0`..`$.f9` while its documents
//! also carry `$.f10`..`$.f16`, which makes it the stitching case: a query
//! touching both sides must read the cache table for the cached paths and
//! fall back to raw JSON parsing for the rest.

use maxson::rewriter::MaxsonScanRewriter;
use maxson_engine::session::Session;
use std::path::PathBuf;

fn bench_data_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("bench-data")
}

fn plain_session() -> Session {
    Session::open(bench_data_root()).unwrap()
}

fn rewriting_session() -> Session {
    let root = bench_data_root();
    let mut session = Session::open(&root).unwrap();
    let rewriter = MaxsonScanRewriter::open(&root).unwrap();
    session.set_scan_rewriter(Some(Box::new(rewriter)));
    session
}

/// Fully cached paths only: plan must read the cache table, not parse JSON.
const Q_FULLY_CACHED: &str = "select get_json_object(payload, '$.f0') as f0, \
     get_json_object(payload, '$.f1') as f1 from mydb.q1";

/// Mixed: `$.f0` is cached on q2, `$.f10` exists only in the raw payload.
const Q_STITCHED: &str = "select get_json_object(payload, '$.f0') as f0, \
     get_json_object(payload, '$.f10') as f10 from mydb.q2";

/// Predicate on a cached numeric path (exercises SARG pushdown to the
/// cache table, Algorithm 3).
const Q_PUSHDOWN: &str = "select get_json_object(payload, '$.f0') as f0 \
     from mydb.q1 where get_json_object(payload, '$.f0') > 900";

/// Query touching only uncached paths of a cached table: the rewriter
/// must still leave results intact.
const Q_UNCACHED_PATH: &str = "select get_json_object(payload, '$.f12') as f12 from mydb.q2";

const GOLDEN_QUERIES: [&str; 4] = [Q_FULLY_CACHED, Q_STITCHED, Q_PUSHDOWN, Q_UNCACHED_PATH];

#[test]
fn fully_cached_query_reads_cache_table_without_parsing() {
    let session = rewriting_session();
    let result = session.execute(Q_FULLY_CACHED).unwrap();
    assert!(
        result.plan_display.contains("MaxsonCombinedScan"),
        "plan not rewritten:\n{}",
        result.plan_display
    );
    assert!(
        result.plan_display.contains("cache-only") && result.plan_display.contains("raw_cols=[]"),
        "plan still touches the raw table:\n{}",
        result.plan_display
    );
    assert_eq!(
        result.metrics.parse_calls, 0,
        "fully cached query must not parse JSON: {:?}",
        result.metrics
    );
    assert!(
        result.metrics.cache_hits > 0,
        "expected cache hits: {:?}",
        result.metrics
    );
    assert!(!result.rows.is_empty(), "q1 has rows");
}

#[test]
fn partially_cached_query_stitches_uncached_columns_from_raw() {
    let session = rewriting_session();
    let result = session.execute(Q_STITCHED).unwrap();
    assert!(
        result.plan_display.contains("MaxsonCombinedScan"),
        "plan not rewritten:\n{}",
        result.plan_display
    );
    assert!(
        !result.plan_display.contains("raw_cols=[]")
            && result.plan_display.contains("cache_cols=["),
        "combined scan must stitch raw and cached columns:\n{}",
        result.plan_display
    );
    assert!(
        result.metrics.cache_hits > 0,
        "cached side ($.f0) must hit the cache: {:?}",
        result.metrics
    );
    assert!(
        result.metrics.parse_calls > 0,
        "uncached side ($.f10) must parse raw JSON: {:?}",
        result.metrics
    );
    // The stitched column carries real values, not a column of nulls.
    let f10_idx = result.columns.iter().position(|c| c == "f10").unwrap();
    assert!(
        result
            .rows
            .iter()
            .any(|r| !matches!(r[f10_idx], maxson_storage::Cell::Null)),
        "$.f10 should produce non-null values"
    );
}

#[test]
fn rewritten_results_are_byte_identical_to_unrewritten() {
    let plain = plain_session();
    let rewritten = rewriting_session();
    for sql in GOLDEN_QUERIES {
        let reference = plain.execute(sql).unwrap();
        let result = rewritten.execute(sql).unwrap();
        assert!(
            reference.metrics.parse_calls > 0,
            "unrewritten run must parse JSON for {sql}"
        );
        assert_eq!(
            result.to_display_string(),
            reference.to_display_string(),
            "rewritten output diverged for {sql}"
        );
    }
}

#[test]
fn pushdown_query_stays_rewritten_and_correct() {
    let plain = plain_session();
    let rewritten = rewriting_session();
    let reference = plain.execute(Q_PUSHDOWN).unwrap();
    let result = rewritten.execute(Q_PUSHDOWN).unwrap();
    assert!(
        result.plan_display.contains("MaxsonCombinedScan"),
        "plan not rewritten:\n{}",
        result.plan_display
    );
    assert_eq!(result.to_display_string(), reference.to_display_string());
    // The filter keeps only rows with f0 > 900; both engines agree on the
    // (non-trivial, non-empty) selection.
    assert!(!result.rows.is_empty(), "some rows satisfy f0 > 900");
    assert!(
        (result.rows.len() as u64) < reference.metrics.rows_scanned,
        "filter must be selective: {} rows out of {} scanned",
        result.rows.len(),
        reference.metrics.rows_scanned
    );
}
