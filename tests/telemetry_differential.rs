//! Differential proof that the always-on telemetry subsystem is
//! observation-only: installing a query log, a private metric registry,
//! and a zero slow-query threshold never changes what a query computes.
//!
//! Four layers:
//!
//! 1. **Golden queries** — Maxson-rewritten golden queries over the
//!    checked-in warehouse, with full telemetry vs without, across
//!    Jackson/Mison/Tape at 1 and 4 threads; rows, rendered output, and
//!    every work counter must be byte-identical.
//! 2. **Synthetic warehouse** — the same matrix over a generated
//!    temp-directory table, so the invariant is not an artifact of the
//!    golden data shape.
//! 3. **Exposition determinism** — the same fixed query sequence replayed
//!    on two fresh registries yields byte-identical Prometheus text once
//!    wall-time series are filtered out.
//! 4. **Sketch fidelity** — the workload sketch's hot-path ranking equals
//!    exact per-(table, path) counts accumulated from `ExecMetrics`.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use maxson::rewriter::MaxsonScanRewriter;
use maxson_engine::metrics::ExecMetrics;
use maxson_engine::session::{JsonParserKind, Session};
use maxson_engine::Registry;
use maxson_storage::file::WriteOptions;
use maxson_storage::{Cell, ColumnType, Field, Schema};

fn bench_data_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("bench-data")
}

fn temp_root(name: &str) -> PathBuf {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .subsec_nanos();
    std::env::temp_dir().join(format!("maxson-teld-{}-{nanos}-{name}", std::process::id()))
}

fn temp_log(name: &str) -> PathBuf {
    temp_root(name).with_extension("jsonl")
}

/// Every discrete-work counter plus the per-path extraction ledger.
/// Timing gauges are excluded (they legitimately vary run to run).
fn work_counters(m: &ExecMetrics) -> (Vec<u64>, Vec<(String, u64)>) {
    (
        vec![
            m.rows_scanned,
            m.bytes_read,
            m.parse_calls,
            m.docs_parsed,
            m.cache_hits,
            m.row_groups_skipped,
            m.row_groups_read,
            m.prefilter_dropped,
            m.cells_materialized,
            m.batch_rows_skipped,
            m.lru_hits,
            m.lru_misses,
            m.lru_evictions,
            m.nodes_skipped,
            m.bitmap_builds,
            m.bitmap_bytes,
        ],
        m.path_extracts.clone(),
    )
}

const GOLDEN_QUERIES: [&str; 3] = [
    "select get_json_object(payload, '$.f0') as f0, \
     get_json_object(payload, '$.f1') as f1 from mydb.q1",
    "select get_json_object(payload, '$.f0') as f0, \
     get_json_object(payload, '$.f10') as f10 from mydb.q2",
    "select get_json_object(payload, '$.f0') as f0 \
     from mydb.q1 where get_json_object(payload, '$.f0') > 900",
];

const PARSERS: [JsonParserKind; 3] = [
    JsonParserKind::Jackson,
    JsonParserKind::Mison,
    JsonParserKind::Tape,
];

/// Run `sql` bare vs fully instrumented (private registry, query log,
/// zero slow threshold); everything the query computes must be identical.
fn assert_telemetry_is_observation_only(
    mut make_session: impl FnMut() -> Session,
    sql: &str,
    label: &str,
) {
    let bare = make_session()
        .execute(sql)
        .unwrap_or_else(|e| panic!("[{label}] bare run failed for {sql}: {e}"));

    let mut instrumented_session = make_session();
    let registry = Arc::new(Registry::new());
    instrumented_session.set_metrics_registry(Arc::clone(&registry));
    let log_path = temp_log(&format!("diff-{}", label.replace('/', "-")));
    instrumented_session
        .set_query_log(Some(log_path.clone()))
        .expect("query log opens");
    instrumented_session.set_slow_threshold(Duration::ZERO);
    let instrumented = instrumented_session
        .execute(sql)
        .unwrap_or_else(|e| panic!("[{label}] instrumented run failed for {sql}: {e}"));

    assert_eq!(
        bare.rows, instrumented.rows,
        "[{label}] telemetry changed rows for {sql}"
    );
    assert_eq!(
        bare.to_display_string(),
        instrumented.to_display_string(),
        "[{label}] telemetry changed rendered output for {sql}"
    );
    assert_eq!(
        work_counters(&bare.metrics),
        work_counters(&instrumented.metrics),
        "[{label}] telemetry changed work counters for {sql}"
    );

    // The instrumentation must actually have observed the query — an
    // empty registry would make this differential vacuous.
    assert_eq!(
        registry.counter_value(
            "maxson_queries_total",
            &[("parser", instrumented_session.parser_kind().name())]
        ),
        Some(1),
        "[{label}] registry did not observe the query"
    );
    let log = std::fs::read_to_string(&log_path).expect("query log written");
    assert_eq!(log.lines().count(), 1, "[{label}] one log line per query");
    let line = maxson_json::parse(log.lines().next().unwrap()).expect("log line parses");
    assert_eq!(
        line.get("slow").and_then(|s| s.as_bool()),
        Some(true),
        "[{label}] zero threshold flags every query slow"
    );
    std::fs::remove_file(&log_path).ok();
}

#[test]
fn golden_queries_unchanged_by_telemetry_three_parsers_both_thread_counts() {
    let root = bench_data_root();
    for parser in PARSERS {
        for threads in [1usize, 4] {
            let make = || {
                let mut session = Session::open(&root).unwrap();
                session.set_parser_kind(parser);
                session.set_threads(Some(threads));
                let rewriter = MaxsonScanRewriter::open(&root).unwrap();
                session.set_scan_rewriter(Some(Box::new(rewriter)));
                session
            };
            for sql in GOLDEN_QUERIES {
                assert_telemetry_is_observation_only(make, sql, &format!("{parser:?}/{threads}t"));
            }
        }
    }
}

fn build_synthetic_table(root: &PathBuf) {
    let mut session = Session::open(root).unwrap();
    let schema = Schema::new(vec![
        Field::new("id", ColumnType::Int64),
        Field::new("payload", ColumnType::Utf8),
    ])
    .unwrap();
    let mut catalog = session.catalog_mut();
    let table = catalog.create_table("db", "t", schema, 0).unwrap();
    for split in 0..3 {
        let rows: Vec<Vec<Cell>> = (0..40)
            .map(|i| {
                let n = split * 40 + i;
                vec![
                    Cell::Int(n),
                    Cell::from(format!(
                        r#"{{"a": {n}, "b": {{"c": {}}}, "tag": "t{}"}}"#,
                        n % 7,
                        n % 3
                    )),
                ]
            })
            .collect();
        table
            .append_file(
                &rows,
                WriteOptions {
                    row_group_size: 8,
                    ..Default::default()
                },
                1,
            )
            .unwrap();
    }
}

#[test]
fn synthetic_warehouse_unchanged_by_telemetry() {
    let root = temp_root("synth");
    build_synthetic_table(&root);
    let queries = [
        "select id, get_json_object(payload, '$.a') as a from db.t",
        "select get_json_object(payload, '$.b.c') as bc from db.t \
         where get_json_object(payload, '$.a') >= 10",
        "select get_json_object(payload, '$.tag') as tag, count(*) from db.t \
         group by get_json_object(payload, '$.tag') \
         order by get_json_object(payload, '$.tag')",
    ];
    for parser in PARSERS {
        for threads in [1usize, 4] {
            let make = || {
                let mut session = Session::open(&root).unwrap();
                session.set_parser_kind(parser);
                session.set_threads(Some(threads));
                session
            };
            for sql in queries {
                assert_telemetry_is_observation_only(
                    make,
                    sql,
                    &format!("synth-{parser:?}/{threads}t"),
                );
            }
        }
    }
    std::fs::remove_dir_all(&root).ok();
}

/// Replay the golden query sequence against a fresh registry.
fn replay_golden(parser: JsonParserKind) -> (Arc<Registry>, Vec<ExecMetrics>) {
    let root = bench_data_root();
    let mut session = Session::open(&root).unwrap();
    session.set_parser_kind(parser);
    session.set_threads(Some(2));
    let registry = Arc::new(Registry::new());
    session.set_metrics_registry(Arc::clone(&registry));
    let mut all = Vec::new();
    for sql in GOLDEN_QUERIES {
        all.push(session.execute(sql).expect("golden query").metrics);
    }
    (registry, all)
}

/// Wall-time series vary run to run; everything else must not.
fn stable_exposition(registry: &Registry) -> String {
    registry
        .expose()
        .lines()
        .filter(|l| !l.contains("seconds"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn exposition_is_deterministic_for_a_fixed_query_sequence() {
    let (first, _) = replay_golden(JsonParserKind::Tape);
    let (second, _) = replay_golden(JsonParserKind::Tape);
    let a = stable_exposition(&first);
    assert_eq!(
        a,
        stable_exposition(&second),
        "same query sequence, different exposition"
    );
    // The filtered exposition still carries real content.
    assert!(a.contains("maxson_queries_total{parser=\"tape\"} 3"));
    assert!(a.contains("maxson_hot_path_extracts{"));
}

#[test]
fn sketch_ranking_matches_exact_counts_on_golden_workload() {
    let (registry, per_query) = replay_golden(JsonParserKind::Jackson);
    // Exact side: the golden queries each scan one table; attribute each
    // path's count the same way `Session::finish_query` does.
    let tables = ["mydb.q1", "mydb.q2", "mydb.q1"];
    let mut exact: BTreeMap<(String, String), u64> = BTreeMap::new();
    for (metrics, table) in per_query.iter().zip(tables) {
        for (path, count) in &metrics.path_extracts {
            *exact.entry((table.to_string(), path.clone())).or_insert(0) += count;
        }
    }
    let mut truth: Vec<((String, String), u64)> = exact.into_iter().collect();
    truth.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    assert!(!truth.is_empty(), "golden workload extracted no paths");

    let hot = registry.hot_paths(truth.len());
    let got: Vec<((String, String), u64)> = hot
        .into_iter()
        .map(|(table, path, count)| ((table, path), count))
        .collect();
    assert_eq!(
        got, truth,
        "sketch ranking diverged from exact per-path counts"
    );
}
