//! Property-based tests over the core invariants of the stack.

use proptest::prelude::*;

use maxson_json::mison::MisonProjector;
use maxson_json::value::{JsonNumber, JsonValue};
use maxson_json::{parse, to_string, to_string_pretty, JsonPath};
use maxson_storage::encoding::{
    read_bitmap, read_str, read_varint, rle_decode_i64, rle_encode_i64, unzigzag, write_bitmap,
    write_str, write_varint, zigzag,
};
use maxson_storage::file::{write_rows, NorcFile, WriteOptions};
use maxson_storage::{Cell, CmpOp, ColumnType, Field, Schema, SearchArgument};

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

/// Arbitrary JSON values (bounded depth / width).
fn arb_json() -> impl Strategy<Value = JsonValue> {
    let leaf = prop_oneof![
        Just(JsonValue::Null),
        any::<bool>().prop_map(JsonValue::Bool),
        any::<i64>().prop_map(|i| JsonValue::Number(JsonNumber::Int(i))),
        (-1e9f64..1e9f64).prop_map(|f| JsonValue::Number(JsonNumber::Float(f))),
        "[a-zA-Z0-9 _\\-\\.\"\\\\/\u{00e9}\u{4e16}]{0,12}".prop_map(JsonValue::String),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(JsonValue::Array),
            prop::collection::vec(("[a-z][a-z0-9_]{0,6}", inner), 0..4)
                .prop_map(JsonValue::Object),
        ]
    })
}

/// Simple field names for path-navigable objects (distinct keys).
fn arb_flat_object() -> impl Strategy<Value = JsonValue> {
    prop::collection::btree_map(
        "[a-z][a-z0-9]{0,5}",
        prop_oneof![
            any::<i32>().prop_map(|i| JsonValue::Number(JsonNumber::Int(i64::from(i)))),
            "[a-zA-Z0-9,:{}\\[\\] ]{0,10}".prop_map(JsonValue::String),
            Just(JsonValue::Null),
            any::<bool>().prop_map(JsonValue::Bool),
        ],
        1..8,
    )
    .prop_map(|m| JsonValue::Object(m.into_iter().collect()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // -------------------------------------------------------------
    // JSON substrate
    // -------------------------------------------------------------

    #[test]
    fn json_compact_round_trip(v in arb_json()) {
        let text = to_string(&v);
        let back = parse(&text).expect("serializer output parses");
        prop_assert_eq!(back, v);
    }

    #[test]
    fn json_pretty_round_trip(v in arb_json()) {
        let text = to_string_pretty(&v);
        let back = parse(&text).expect("pretty output parses");
        prop_assert_eq!(back, v);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "\\PC{0,64}") {
        let _ = parse(&s); // must not panic
    }

    #[test]
    fn mison_matches_dom_on_flat_objects(doc in arb_flat_object()) {
        let text = to_string(&doc);
        for (key, _) in doc.as_object().unwrap() {
            let path = JsonPath::parse(&format!("$.{key}")).unwrap();
            let dom = maxson_json::get_json_object(&text, &path);
            let mison = MisonProjector::project_path(&text, &path);
            prop_assert_eq!(mison, dom, "path $.{} over {}", key, text);
        }
        // A key that does not exist misses in both.
        let path = JsonPath::parse("$.zzzzzz9").unwrap();
        prop_assert_eq!(
            MisonProjector::project_path(&text, &path),
            maxson_json::get_json_object(&text, &path)
        );
    }

    #[test]
    fn path_eval_agrees_with_manual_navigation(
        doc in arb_json(),
    ) {
        // Walk every leaf path the document reports and evaluate it.
        for path_text in doc.leaf_paths().into_iter().take(16) {
            let path = JsonPath::parse(&path_text).unwrap();
            let result = path.eval(&doc);
            prop_assert!(result.is_some(), "leaf path {} must resolve", path_text);
        }
    }

    // -------------------------------------------------------------
    // Encodings
    // -------------------------------------------------------------

    #[test]
    fn varint_round_trip(values in prop::collection::vec(any::<u64>(), 0..64)) {
        let mut buf = Vec::new();
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            prop_assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
        }
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn zigzag_round_trip(v in any::<i64>()) {
        prop_assert_eq!(unzigzag(zigzag(v)), v);
    }

    #[test]
    fn rle_round_trip(values in prop::collection::vec(-1000i64..1000, 0..200)) {
        let mut buf = Vec::new();
        rle_encode_i64(&values, &mut buf);
        let mut pos = 0;
        prop_assert_eq!(rle_decode_i64(&buf, &mut pos).unwrap(), values);
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn string_and_bitmap_round_trip(
        s in "\\PC{0,32}",
        bits in prop::collection::vec(any::<bool>(), 0..70),
    ) {
        let mut buf = Vec::new();
        write_str(&mut buf, &s);
        write_bitmap(&mut buf, &bits);
        let mut pos = 0;
        prop_assert_eq!(read_str(&buf, &mut pos).unwrap(), s);
        prop_assert_eq!(read_bitmap(&buf, &mut pos).unwrap(), bits);
    }

    // -------------------------------------------------------------
    // Cell ordering invariants
    // -------------------------------------------------------------

    #[test]
    fn cell_total_cmp_is_antisymmetric_and_transitive(
        a in arb_cell(), b in arb_cell(), c in arb_cell(),
    ) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        prop_assert_eq!(a.total_cmp(&a), Ordering::Equal);
        // Transitivity: a<=b and b<=c => a<=c.
        if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.total_cmp(&c), Ordering::Greater);
        }
    }
}

fn arb_cell() -> impl Strategy<Value = Cell> {
    prop_oneof![
        Just(Cell::Null),
        any::<bool>().prop_map(Cell::Bool),
        (-1000i64..1000).prop_map(Cell::Int),
        (-1000.0f64..1000.0).prop_map(Cell::Float),
        prop_oneof![
            "[a-z]{0,6}",
            (-1000i64..1000).prop_map(|i| i.to_string()),
        ]
        .prop_map(Cell::Str),
    ]
}

// ---------------------------------------------------------------------
// Norc + SARG soundness (own proptest block: filesystem-heavy, fewer cases)
// ---------------------------------------------------------------------

fn temp_file(name: &str, case: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("maxson-proptest");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}-{case}.norc", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn norc_round_trip_arbitrary_rows(
        case in any::<u64>(),
        raw_rows in prop::collection::vec(
            (any::<Option<i64>>(), prop::option::of("[a-zA-Z0-9]{0,8}")),
            0..60,
        ),
        rg_size in 1usize..20,
    ) {
        let schema = Schema::new(vec![
            Field::new("i", ColumnType::Int64),
            Field::new("s", ColumnType::Utf8),
        ])
        .unwrap();
        let rows: Vec<Vec<Cell>> = raw_rows
            .iter()
            .map(|(i, s)| vec![Cell::from(*i), Cell::from(s.clone())])
            .collect();
        let path = temp_file("roundtrip", case);
        write_rows(&path, schema, &rows, WriteOptions {
            row_group_size: rg_size,
            ..Default::default()
        })
        .unwrap();
        let file = NorcFile::open(&path).unwrap();
        prop_assert_eq!(file.read_all_rows().unwrap(), rows);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sarg_skipping_never_drops_qualifying_rows(
        case in any::<u64>(),
        values in prop::collection::vec(prop::option::of(-50i64..50), 1..80),
        rg_size in 1usize..16,
        lit in -60i64..60,
        op_idx in 0usize..6,
    ) {
        let op = [CmpOp::Eq, CmpOp::NotEq, CmpOp::Lt, CmpOp::LtEq, CmpOp::Gt, CmpOp::GtEq][op_idx];
        let schema = Schema::new(vec![Field::new("v", ColumnType::Int64)]).unwrap();
        let rows: Vec<Vec<Cell>> = values.iter().map(|v| vec![Cell::from(*v)]).collect();
        let path = temp_file("sarg", case);
        write_rows(&path, schema, &rows, WriteOptions {
            row_group_size: rg_size,
            ..Default::default()
        })
        .unwrap();
        let file = NorcFile::open(&path).unwrap();
        let sarg = SearchArgument::new().with(0, op, Cell::Int(lit));
        let keep = sarg.keep_array(file.row_groups());
        let cols = file.read_columns(&[0], Some(&keep)).unwrap();
        // Collect the surviving values.
        let survived: Vec<Cell> = (0..cols[0].len()).map(|i| cols[0].get(i)).collect();
        // Every row that truly satisfies the predicate must be present.
        use std::cmp::Ordering;
        let qualifies = |c: &Cell| -> bool {
            match c.sql_cmp(&Cell::Int(lit)) {
                None => false,
                Some(ord) => match op {
                    CmpOp::Eq => ord == Ordering::Equal,
                    CmpOp::NotEq => ord != Ordering::Equal,
                    CmpOp::Lt => ord == Ordering::Less,
                    CmpOp::LtEq => ord != Ordering::Greater,
                    CmpOp::Gt => ord == Ordering::Greater,
                    CmpOp::GtEq => ord != Ordering::Less,
                },
            }
        };
        let expected: Vec<Cell> = rows
            .iter()
            .map(|r| r[0].clone())
            .filter(qualifies)
            .collect();
        let got: Vec<Cell> = survived.iter().filter(|c| qualifies(c)).cloned().collect();
        prop_assert_eq!(got, expected, "SARG {:?} {} dropped qualifying rows", op, lit);
        std::fs::remove_file(&path).ok();
    }
}

// ---------------------------------------------------------------------
// SQL LIKE matcher vs a naive oracle
// ---------------------------------------------------------------------

/// Reference implementation: dynamic programming over chars.
fn like_oracle(text: &str, pattern: &str) -> bool {
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let mut dp = vec![vec![false; p.len() + 1]; t.len() + 1];
    dp[0][0] = true;
    for j in 1..=p.len() {
        dp[0][j] = p[j - 1] == '%' && dp[0][j - 1];
    }
    for i in 1..=t.len() {
        for j in 1..=p.len() {
            dp[i][j] = match p[j - 1] {
                '%' => dp[i - 1][j] || dp[i][j - 1],
                '_' => dp[i - 1][j - 1],
                c => c == t[i - 1] && dp[i - 1][j - 1],
            };
        }
    }
    dp[t.len()][p.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn like_match_agrees_with_dp_oracle(
        text in "[ab%_]{0,8}",
        pattern in "[ab%_]{0,6}",
    ) {
        prop_assert_eq!(
            maxson_engine::expr::like_match(&text, &pattern),
            like_oracle(&text, &pattern),
            "text={:?} pattern={:?}", text, pattern
        );
    }

    #[test]
    fn sql_parser_never_panics(s in "\\PC{0,80}") {
        let _ = maxson_engine::sql::parse_select(&s); // must not panic
    }

    #[test]
    fn xml_parser_never_panics(s in "\\PC{0,80}") {
        let _ = maxson_json::xml::xml_to_value(&s); // must not panic
    }

    #[test]
    fn xml_round_trip_preserves_structure(
        items in prop::collection::vec("[a-z]{1,6}", 1..5),
        attr in "[a-z0-9]{1,6}",
    ) {
        let mut xml = format!("<root id=\"{attr}\">");
        for item in &items {
            xml.push_str(&format!("<item>{item}</item>"));
        }
        xml.push_str("</root>");
        let v = maxson_json::xml::xml_to_value(&xml).unwrap();
        let root = v.get("root").unwrap();
        prop_assert_eq!(root.get("@id").unwrap().as_str(), Some(attr.as_str()));
        if items.len() == 1 {
            prop_assert_eq!(root.get("item").unwrap().as_str(), Some(items[0].as_str()));
        } else {
            let arr = root.get("item").unwrap().as_array().unwrap();
            prop_assert_eq!(arr.len(), items.len());
            for (got, want) in arr.iter().zip(&items) {
                prop_assert_eq!(got.as_str(), Some(want.as_str()));
            }
        }
    }
}
