//! Property-based tests over the core invariants of the stack, running on
//! the in-repo `maxson-testkit` harness (hermetic: no registry deps).
//!
//! A failing property prints its case seed; replay exactly that case with
//! `MAXSON_TESTKIT_SEED=<seed> cargo test <property_name>`.

use maxson_json::mison::MisonProjector;
use maxson_json::value::{JsonNumber, JsonValue};
use maxson_json::{parse, to_string, to_string_pretty, JsonPath};
use maxson_storage::encoding::{
    read_bitmap, read_str, read_varint, rle_decode_i64, rle_encode_i64, unzigzag, write_bitmap,
    write_str, write_varint, zigzag,
};
use maxson_storage::file::{write_rows, NorcFile, WriteOptions};
use maxson_storage::{Cell, CmpOp, ColumnType, Field, Schema, SearchArgument};
use maxson_testkit::prop::{alphabet, check, Config, Gen};
use maxson_testkit::{prop_assert, prop_assert_eq, prop_assert_ne};

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

/// Arbitrary JSON values (bounded depth / width).
fn arb_json() -> Gen<JsonValue> {
    let mut string_chars = alphabet("a-zA-Z0-9");
    string_chars.extend([' ', '_', '-', '.', '"', '\\', '/', '\u{00e9}', '\u{4e16}']);
    let leaf = Gen::one_of(vec![
        Gen::just(JsonValue::Null),
        Gen::bool_any().map(JsonValue::Bool),
        Gen::i64_any().map(|i| JsonValue::Number(JsonNumber::Int(i))),
        Gen::f64_in(-1e9, 1e9).map(|f| JsonValue::Number(JsonNumber::Float(f))),
        Gen::string_of(&string_chars, 0..13).map(JsonValue::String),
    ]);
    let key = arb_key();
    Gen::recursive(leaf, 3, move |inner| {
        Gen::one_of(vec![
            Gen::vec_of(inner.clone(), 0..4).map(JsonValue::Array),
            Gen::vec_of(Gen::tuple2(key.clone(), inner), 0..4).map(JsonValue::Object),
        ])
    })
}

/// Object keys: `[a-z][a-z0-9_]{0,6}`.
fn arb_key() -> Gen<String> {
    let first = Gen::string_of(&alphabet("a-z"), 1..2);
    let rest = Gen::string_of(&alphabet("a-z0-9_"), 0..7);
    Gen::tuple2(first, rest).map(|(a, b)| format!("{a}{b}"))
}

/// Path-navigable flat objects with distinct keys.
fn arb_flat_object() -> Gen<JsonValue> {
    let mut value_chars = alphabet("a-zA-Z0-9");
    value_chars.extend([',', ':', '{', '}', '[', ']', ' ']);
    let key = Gen::tuple2(
        Gen::string_of(&alphabet("a-z"), 1..2),
        Gen::string_of(&alphabet("a-z0-9"), 0..6),
    )
    .map(|(a, b)| format!("{a}{b}"));
    let value = Gen::one_of(vec![
        Gen::i32_any().map(|i| JsonValue::Number(JsonNumber::Int(i64::from(i)))),
        Gen::string_of(&value_chars, 0..11).map(JsonValue::String),
        Gen::just(JsonValue::Null),
        Gen::bool_any().map(JsonValue::Bool),
    ]);
    // BTreeMap keeps keys distinct, matching the original btree_map strategy.
    Gen::vec_of(Gen::tuple2(key, value), 1..8).map(|pairs| {
        let map: std::collections::BTreeMap<String, JsonValue> = pairs.into_iter().collect();
        JsonValue::Object(map.into_iter().collect())
    })
}

fn arb_cell() -> Gen<Cell> {
    Gen::one_of(vec![
        Gen::just(Cell::Null),
        Gen::bool_any().map(Cell::Bool),
        Gen::i64_in(-1000..=999).map(Cell::Int),
        Gen::f64_in(-1000.0, 1000.0).map(Cell::Float),
        Gen::one_of(vec![
            Gen::string_of(&alphabet("a-z"), 0..7),
            Gen::i64_in(-1000..=999).map(|i| i.to_string()),
        ])
        .map(Cell::from),
    ])
}

// ---------------------------------------------------------------------
// JSON substrate (128 cases, mirroring the original proptest block)
// ---------------------------------------------------------------------

fn cfg128() -> Config {
    Config::with_cases(128)
}

#[test]
fn json_compact_round_trip() {
    check("json_compact_round_trip", &cfg128(), &arb_json(), |v| {
        let text = to_string(v);
        let back = parse(&text).expect("serializer output parses");
        prop_assert_eq!(&back, v);
        Ok(())
    });
}

#[test]
fn json_pretty_round_trip() {
    check("json_pretty_round_trip", &cfg128(), &arb_json(), |v| {
        let text = to_string_pretty(v);
        let back = parse(&text).expect("pretty output parses");
        prop_assert_eq!(&back, v);
        Ok(())
    });
}

#[test]
fn parser_never_panics_on_arbitrary_input() {
    check(
        "parser_never_panics_on_arbitrary_input",
        &cfg128(),
        &Gen::printable(64),
        |s| {
            let _ = parse(s); // must not panic
            Ok(())
        },
    );
}

#[test]
fn mison_matches_dom_on_flat_objects() {
    check(
        "mison_matches_dom_on_flat_objects",
        &cfg128(),
        &arb_flat_object(),
        |doc| {
            let text = to_string(doc);
            for (key, _) in doc.as_object().unwrap() {
                let path = JsonPath::parse(&format!("$.{key}")).unwrap();
                let dom = maxson_json::get_json_object(&text, &path);
                let mison = MisonProjector::project_path(&text, &path);
                prop_assert_eq!(mison, dom, "path $.{} over {}", key, text);
            }
            // A key that does not exist misses in both.
            let path = JsonPath::parse("$.zzzzzz9").unwrap();
            prop_assert_eq!(
                MisonProjector::project_path(&text, &path),
                maxson_json::get_json_object(&text, &path)
            );
            Ok(())
        },
    );
}

#[test]
fn path_eval_agrees_with_manual_navigation() {
    check(
        "path_eval_agrees_with_manual_navigation",
        &cfg128(),
        &arb_json(),
        |doc| {
            // Walk every leaf path the document reports and evaluate it.
            for path_text in doc.leaf_paths().into_iter().take(16) {
                let path = JsonPath::parse(&path_text).unwrap();
                let result = path.eval(doc);
                prop_assert!(result.is_some(), "leaf path {} must resolve", path_text);
            }
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Encodings
// ---------------------------------------------------------------------

#[test]
fn varint_round_trip() {
    let gen = Gen::vec_of(Gen::u64_any(), 0..64);
    check("varint_round_trip", &cfg128(), &gen, |values| {
        let mut buf = Vec::new();
        for &v in values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in values {
            prop_assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
        }
        prop_assert_eq!(pos, buf.len());
        Ok(())
    });
}

#[test]
fn zigzag_round_trip() {
    check("zigzag_round_trip", &cfg128(), &Gen::i64_any(), |&v| {
        prop_assert_eq!(unzigzag(zigzag(v)), v);
        Ok(())
    });
}

#[test]
fn rle_round_trip() {
    let gen = Gen::vec_of(Gen::i64_in(-1000..=999), 0..200);
    check("rle_round_trip", &cfg128(), &gen, |values| {
        let mut buf = Vec::new();
        rle_encode_i64(values, &mut buf);
        let mut pos = 0;
        prop_assert_eq!(rle_decode_i64(&buf, &mut pos).unwrap(), values.clone());
        prop_assert_eq!(pos, buf.len());
        Ok(())
    });
}

#[test]
fn string_and_bitmap_round_trip() {
    let gen = Gen::tuple2(Gen::printable(32), Gen::vec_of(Gen::bool_any(), 0..70));
    check(
        "string_and_bitmap_round_trip",
        &cfg128(),
        &gen,
        |(s, bits)| {
            let mut buf = Vec::new();
            write_str(&mut buf, s);
            write_bitmap(&mut buf, bits);
            let mut pos = 0;
            prop_assert_eq!(read_str(&buf, &mut pos).unwrap(), s.clone());
            prop_assert_eq!(read_bitmap(&buf, &mut pos).unwrap(), bits.clone());
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Cell ordering invariants
// ---------------------------------------------------------------------

#[test]
fn cell_total_cmp_is_antisymmetric_and_transitive() {
    let gen = Gen::tuple2(arb_cell(), Gen::tuple2(arb_cell(), arb_cell()));
    check(
        "cell_total_cmp_is_antisymmetric_and_transitive",
        &cfg128(),
        &gen,
        |(a, (b, c))| {
            use std::cmp::Ordering;
            prop_assert_eq!(a.total_cmp(b), b.total_cmp(a).reverse());
            prop_assert_eq!(a.total_cmp(a), Ordering::Equal);
            // Transitivity: a<=b and b<=c => a<=c.
            if a.total_cmp(b) != Ordering::Greater && b.total_cmp(c) != Ordering::Greater {
                prop_assert_ne!(a.total_cmp(c), Ordering::Greater);
            }
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Norc + SARG soundness (own config: filesystem-heavy, fewer cases)
// ---------------------------------------------------------------------

fn cfg24() -> Config {
    Config::with_cases(24)
}

/// Per-process subdirectory so parallel test binaries never collide on
/// file names; `case` keeps files distinct within one property run.
fn temp_file(name: &str, case: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("maxson-proptest")
        .join(format!("pid-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{case}.norc"))
}

#[test]
fn norc_round_trip_arbitrary_rows() {
    let row = Gen::tuple2(
        Gen::option_of(Gen::i64_any()),
        Gen::option_of(Gen::string_of(&alphabet("a-zA-Z0-9"), 0..9)),
    );
    let gen = Gen::tuple2(
        Gen::tuple2(Gen::u64_any(), Gen::vec_of(row, 0..60)),
        Gen::usize_in(1..=19),
    );
    check(
        "norc_round_trip_arbitrary_rows",
        &cfg24(),
        &gen,
        |((case, raw_rows), rg_size)| {
            let schema = Schema::new(vec![
                Field::new("i", ColumnType::Int64),
                Field::new("s", ColumnType::Utf8),
            ])
            .unwrap();
            let rows: Vec<Vec<Cell>> = raw_rows
                .iter()
                .map(|(i, s)| vec![Cell::from(*i), Cell::from(s.clone())])
                .collect();
            let path = temp_file("roundtrip", *case);
            write_rows(
                &path,
                schema,
                &rows,
                WriteOptions {
                    row_group_size: *rg_size,
                    ..Default::default()
                },
            )
            .unwrap();
            let file = NorcFile::open(&path).unwrap();
            prop_assert_eq!(file.read_all_rows().unwrap(), rows);
            std::fs::remove_file(&path).ok();
            Ok(())
        },
    );
}

#[test]
fn sarg_skipping_never_drops_qualifying_rows() {
    let gen = Gen::tuple2(
        Gen::tuple2(
            Gen::u64_any(),
            Gen::vec_of(Gen::option_of(Gen::i64_in(-50..=49)), 1..80),
        ),
        Gen::tuple2(
            Gen::tuple2(Gen::usize_in(1..=15), Gen::i64_in(-60..=59)),
            Gen::usize_in(0..=5),
        ),
    );
    check(
        "sarg_skipping_never_drops_qualifying_rows",
        &cfg24(),
        &gen,
        |((case, values), ((rg_size, lit), op_idx))| {
            let lit = *lit;
            let op = [
                CmpOp::Eq,
                CmpOp::NotEq,
                CmpOp::Lt,
                CmpOp::LtEq,
                CmpOp::Gt,
                CmpOp::GtEq,
            ][*op_idx];
            let schema = Schema::new(vec![Field::new("v", ColumnType::Int64)]).unwrap();
            let rows: Vec<Vec<Cell>> = values.iter().map(|v| vec![Cell::from(*v)]).collect();
            let path = temp_file("sarg", *case);
            write_rows(
                &path,
                schema,
                &rows,
                WriteOptions {
                    row_group_size: *rg_size,
                    ..Default::default()
                },
            )
            .unwrap();
            let file = NorcFile::open(&path).unwrap();
            let sarg = SearchArgument::new().with(0, op, Cell::Int(lit));
            let keep = sarg.keep_array(file.row_groups());
            let cols = file.read_columns(&[0], Some(&keep)).unwrap();
            // Collect the surviving values.
            let survived: Vec<Cell> = (0..cols[0].len()).map(|i| cols[0].get(i)).collect();
            // Every row that truly satisfies the predicate must be present.
            use std::cmp::Ordering;
            let qualifies = |c: &Cell| -> bool {
                match c.sql_cmp(&Cell::Int(lit)) {
                    None => false,
                    Some(ord) => match op {
                        CmpOp::Eq => ord == Ordering::Equal,
                        CmpOp::NotEq => ord != Ordering::Equal,
                        CmpOp::Lt => ord == Ordering::Less,
                        CmpOp::LtEq => ord != Ordering::Greater,
                        CmpOp::Gt => ord == Ordering::Greater,
                        CmpOp::GtEq => ord != Ordering::Less,
                    },
                }
            };
            let expected: Vec<Cell> = rows
                .iter()
                .map(|r| r[0].clone())
                .filter(qualifies)
                .collect();
            let got: Vec<Cell> = survived.iter().filter(|c| qualifies(c)).cloned().collect();
            prop_assert_eq!(
                got,
                expected,
                "SARG {:?} {} dropped qualifying rows",
                op,
                lit
            );
            std::fs::remove_file(&path).ok();
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// SQL LIKE matcher vs a naive oracle (256 cases)
// ---------------------------------------------------------------------

fn cfg256() -> Config {
    Config::with_cases(256)
}

/// Reference implementation: dynamic programming over chars.
fn like_oracle(text: &str, pattern: &str) -> bool {
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let mut dp = vec![vec![false; p.len() + 1]; t.len() + 1];
    dp[0][0] = true;
    for j in 1..=p.len() {
        dp[0][j] = p[j - 1] == '%' && dp[0][j - 1];
    }
    for i in 1..=t.len() {
        for j in 1..=p.len() {
            dp[i][j] = match p[j - 1] {
                '%' => dp[i - 1][j] || dp[i][j - 1],
                '_' => dp[i - 1][j - 1],
                c => c == t[i - 1] && dp[i - 1][j - 1],
            };
        }
    }
    dp[t.len()][p.len()]
}

#[test]
fn like_match_agrees_with_dp_oracle() {
    let like_chars = ['a', 'b', '%', '_'];
    let gen = Gen::tuple2(
        Gen::string_of(&like_chars, 0..9),
        Gen::string_of(&like_chars, 0..7),
    );
    check(
        "like_match_agrees_with_dp_oracle",
        &cfg256(),
        &gen,
        |(text, pattern)| {
            prop_assert_eq!(
                maxson_engine::expr::like_match(text, pattern),
                like_oracle(text, pattern),
                "text={:?} pattern={:?}",
                text,
                pattern
            );
            Ok(())
        },
    );
}

#[test]
fn sql_parser_never_panics() {
    check(
        "sql_parser_never_panics",
        &cfg256(),
        &Gen::printable(80),
        |s| {
            let _ = maxson_engine::sql::parse_select(s); // must not panic
            Ok(())
        },
    );
}

#[test]
fn xml_parser_never_panics() {
    check(
        "xml_parser_never_panics",
        &cfg256(),
        &Gen::printable(80),
        |s| {
            let _ = maxson_json::xml::xml_to_value(s); // must not panic
            Ok(())
        },
    );
}

#[test]
fn xml_round_trip_preserves_structure() {
    let gen = Gen::tuple2(
        Gen::vec_of(Gen::string_of(&alphabet("a-z"), 1..7), 1..5),
        Gen::string_of(&alphabet("a-z0-9"), 1..7),
    );
    check(
        "xml_round_trip_preserves_structure",
        &cfg256(),
        &gen,
        |(items, attr)| {
            let mut xml = format!("<root id=\"{attr}\">");
            for item in items {
                xml.push_str(&format!("<item>{item}</item>"));
            }
            xml.push_str("</root>");
            let v = maxson_json::xml::xml_to_value(&xml).unwrap();
            let root = v.get("root").unwrap();
            prop_assert_eq!(root.get("@id").unwrap().as_str(), Some(attr.as_str()));
            if items.len() == 1 {
                prop_assert_eq!(root.get("item").unwrap().as_str(), Some(items[0].as_str()));
            } else {
                let arr = root.get("item").unwrap().as_array().unwrap();
                prop_assert_eq!(arr.len(), items.len());
                for (got, want) in arr.iter().zip(items) {
                    prop_assert_eq!(got.as_str(), Some(want.as_str()));
                }
            }
            Ok(())
        },
    );
}
