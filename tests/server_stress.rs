//! Seed-replayable stress/soak test for the query server.
//!
//! Each generated scenario is a randomized client mix — queries (valid and
//! invalid), pings, stats probes, reconnects, and rude mid-query
//! disconnects — run against one server. The invariant checker then
//! audits the shared state:
//!
//! * server counters settle to exactly the number of executed queries
//!   (client-observed outcomes plus abandoned in-flight queries);
//! * metadata-cache counters are monotone, and hits dominate after
//!   warmup (cold misses are bounded by the file count);
//! * LRU telemetry stays sane: resident files never exceed the warehouse
//!   file count, resident bytes are positive while files are resident;
//! * no query lease leaks (`active_queries` returns to zero).
//!
//! Failures replay exactly via `MAXSON_TESTKIT_SEED` (the testkit prop
//! harness prints the seed on failure).

use std::path::PathBuf;
use std::time::{Duration, Instant};

use maxson_engine::Session;
use maxson_server::wire::{self, OpCode, Writer, MAGIC};
use maxson_server::{Client, Server, ServerConfig};
use maxson_storage::file::WriteOptions;
use maxson_storage::{Cell, ColumnType, Field, Schema};
use maxson_testkit::prop::{check, Config, Gen};
use maxson_testkit::Rng;

const FILES: u64 = 3;

const QUERIES: [&str; 3] = [
    "select id, get_json_object(payload, '$.a') as a from db.t where id < 10",
    "select count(*), sum(get_json_object(payload, '$.a')) from db.t",
    "select get_json_object(payload, '$.b') as b from db.t \
     where get_json_object(payload, '$.a') > 50",
];
const BAD_QUERY: &str = "select boom from no.such_table";

fn temp_root(name: &str) -> PathBuf {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .subsec_nanos();
    std::env::temp_dir().join(format!("maxson-soak-{}-{nanos}-{name}", std::process::id()))
}

fn build_warehouse(name: &str) -> (Session, PathBuf) {
    let root = temp_root(name);
    let mut session = Session::open(&root).unwrap();
    let schema = Schema::new(vec![
        Field::new("id", ColumnType::Int64),
        Field::new("payload", ColumnType::Utf8),
    ])
    .unwrap();
    let mut catalog = session.catalog_mut();
    let table = catalog.create_table("db", "t", schema, 0).unwrap();
    for f in 0..FILES as i64 {
        let rows: Vec<Vec<Cell>> = (0..32)
            .map(|i| {
                let n = f * 32 + i;
                vec![
                    Cell::Int(n),
                    Cell::from(format!(r#"{{"a": {n}, "b": "x{}"}}"#, n % 5)),
                ]
            })
            .collect();
        table
            .append_file(&rows, WriteOptions::default(), 1)
            .unwrap();
    }
    drop(catalog);
    (session, root)
}

/// One client's tally of what it definitely made the server execute.
#[derive(Default)]
struct Tally {
    ok: u64,
    err: u64,
    /// Complete QUERY frames fired and abandoned: the server executes and
    /// counts them, but nobody reads the response.
    abandoned: u64,
}

/// Drive one client through `ops` random actions.
fn run_client(addr: std::net::SocketAddr, seed: u64, ops: u32) -> Tally {
    let mut rng = Rng::seed_from_u64(seed);
    let mut tally = Tally::default();
    let mut client = Client::connect(addr).expect("connect");
    for _ in 0..ops {
        match rng.below(100) {
            // Mostly queries, a few of them invalid on purpose.
            0..=59 => {
                let invalid = rng.gen_bool(0.15);
                let sql = if invalid {
                    BAD_QUERY
                } else {
                    QUERIES[rng.below(QUERIES.len() as u64) as usize]
                };
                match client.query(sql) {
                    Ok(_) => tally.ok += 1,
                    Err(_) => tally.err += 1,
                }
            }
            60..=69 => client.ping().expect("ping"),
            70..=79 => {
                client.stats().expect("stats");
            }
            80..=89 => {
                // Reconnect: drop this connection between frames.
                client = Client::connect(addr).expect("reconnect");
            }
            _ => {
                // Rude client: fire a complete query frame over a raw
                // socket and hang up without reading the response.
                let mut raw = std::net::TcpStream::connect(addr).expect("raw connect");
                let mut w = Writer::new();
                w.u8(MAGIC).u8(OpCode::Query as u8).str(QUERIES[0]);
                wire::write_frame(&mut raw, &w.into_bytes()).expect("raw frame");
                drop(raw);
                tally.abandoned += 1;
            }
        }
    }
    tally
}

/// Poll `probe` until it returns true or ~2s elapse.
fn settles(mut probe: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(2);
    loop {
        if probe() {
            return true;
        }
        if Instant::now() > deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn randomized_client_mix_preserves_server_invariants() {
    let scenario = Gen::tuple2(
        Gen::u64_any(), // master seed for per-client rngs
        Gen::tuple2(
            Gen::usize_in(2..=5),  // concurrent clients
            Gen::usize_in(8..=24), // ops per client
        ),
    );
    check(
        "server_stress",
        &Config::with_cases(4),
        &scenario,
        |&(master, (clients, ops))| {
            let (template, root) = build_warehouse("mix");
            let admin = template.clone();
            let mut server = Server::serve(
                template,
                "127.0.0.1:0",
                ServerConfig {
                    threads: Some(2),
                    permits: Some(4),
                    result_cache_mb: None,
                },
            )
            .map_err(|e| e.to_string())?;
            let addr = server.addr();

            // Warm the metadata cache once so hit-domination below is
            // about steady state, not the cold start.
            admin.execute(QUERIES[0]).map_err(|e| e.to_string())?;
            let meta0 = admin.catalog().meta_cache().stats();

            let workers: Vec<_> = (0..clients)
                .map(|c| {
                    let seed = master ^ (c as u64).wrapping_mul(0x9E3779B97F4A7C15);
                    std::thread::spawn(move || run_client(addr, seed, ops as u32))
                })
                .collect();
            let mut observed = Tally::default();
            for w in workers {
                let t = w.join().map_err(|_| "client worker panicked".to_string())?;
                observed.ok += t.ok;
                observed.err += t.err;
                observed.abandoned += t.abandoned;
            }

            // Counters settle to exactly the executed-query total:
            // abandoned frames are executed (and counted) server-side even
            // though no client read the answer.
            let expected_total = observed.ok + observed.err + observed.abandoned;
            let mut last = Client::connect(addr).map_err(|e| e.to_string())?;
            let mut stats = last.stats().map_err(|e| e.to_string())?;
            let settled = settles(|| {
                stats = last.stats().expect("stats");
                stats.queries_ok + stats.queries_err == expected_total
            });
            maxson_testkit::prop_assert!(
                settled,
                "counters never settled: observed ok={} err={} abandoned={}, server {stats:?}",
                observed.ok,
                observed.err,
                observed.abandoned
            );
            maxson_testkit::prop_assert!(
                stats.queries_err >= observed.err,
                "server err counter below client-observed errors: {stats:?}"
            );
            maxson_testkit::prop_assert_eq!(
                stats.active_queries,
                0,
                "query lease leaked: {:?}",
                stats
            );

            // Metadata-cache counters: monotone, hits dominating, cold
            // misses bounded by the file count (warehouse has FILES files
            // plus its catalog-open probes, all warmed by `meta0`).
            let meta1 = admin.catalog().meta_cache().stats();
            maxson_testkit::prop_assert!(
                meta1.hits >= meta0.hits && meta1.misses >= meta0.misses,
                "meta-cache counters went backwards: {:?} -> {:?}",
                meta0,
                meta1
            );
            if observed.ok > 0 {
                maxson_testkit::prop_assert!(
                    meta1.hits > meta0.hits,
                    "queries ran but no footer hits: {:?} -> {:?}",
                    meta0,
                    meta1
                );
                maxson_testkit::prop_assert_eq!(
                    meta1.misses,
                    meta0.misses,
                    "post-warmup footer fetch missed: {:?} -> {:?}",
                    meta0,
                    meta1
                );
            }

            // LRU telemetry stays physically plausible.
            maxson_testkit::prop_assert!(
                meta1.resident_files <= FILES,
                "more resident footers than files: {:?}",
                meta1
            );
            maxson_testkit::prop_assert!(
                meta1.resident_files == 0 || meta1.resident_bytes > 0,
                "resident files with zero bytes: {:?}",
                meta1
            );

            server.stop();
            std::fs::remove_dir_all(&root).ok();
            Ok(())
        },
    );
}
